//! Offline, API-compatible shim for the subset of `criterion` this
//! workspace uses: benchmark groups, `bench_function` / `bench_with_input`,
//! `Throughput`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: one calibration run sizes the per-sample iteration
//! count so a sample lasts ~`SAMPLE_TARGET`; the reported figure is the
//! median of `sample_size` samples (mean, min and max are also kept). With
//! `--test` on the command line (what `cargo test` passes to a
//! `harness = false` bench target) every benchmark body runs exactly once,
//! untimed.
//!
//! Machine-readable output: when the `CRITERION_JSON` environment variable
//! names a path, `criterion_main!` writes every measurement there as a JSON
//! array (see `DESIGN.md` for the schema).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Wall-clock time one sample aims for.
const SAMPLE_TARGET: Duration = Duration::from_millis(150);
/// Default number of samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/benchmark` path.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Elements (or bytes) per iteration, if the group declared throughput.
    pub throughput: Option<u64>,
}

impl Measurement {
    /// Elements processed per second, when throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.throughput.map(|n| n as f64 / (self.median_ns * 1e-9))
    }
}

/// The benchmark manager handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
    test_mode: bool,
}

impl Criterion {
    /// Creates a manager; detects `--test` (passed by `cargo test` to
    /// `harness = false` targets) to run each body once, untimed.
    pub fn new() -> Self {
        Criterion {
            measurements: Vec::new(),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(id, DEFAULT_SAMPLE_SIZE, None, f);
        self
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, throughput: Option<u64>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples_ns: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut b);
        if self.test_mode {
            eprintln!("test {id} ... ok (ran once, untimed)");
            return;
        }
        let mut ns = b.samples_ns;
        if ns.is_empty() {
            return;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = if ns.len() % 2 == 1 {
            ns[ns.len() / 2]
        } else {
            (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2.0
        };
        let m = Measurement {
            id,
            median_ns: median,
            mean_ns: ns.iter().sum::<f64>() / ns.len() as f64,
            min_ns: ns[0],
            max_ns: ns[ns.len() - 1],
            iters_per_sample: b.iters_per_sample,
            samples: ns.len(),
            throughput,
        };
        let rate = match m.elements_per_sec() {
            Some(r) => format!("  ({:.3} Melem/s)", r / 1e6),
            None => String::new(),
        };
        println!(
            "{:<44} time: [{} .. {} .. {}]{}",
            m.id,
            fmt_ns(m.min_ns),
            fmt_ns(m.median_ns),
            fmt_ns(m.max_ns),
            rate
        );
        self.measurements.push(m);
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(match t {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        });
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion
            .run_one(full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Calibrates, then times `routine` over `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibration: one run to size the sample batches.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / iters as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Writes every measurement as a JSON array to `path`.
///
/// Schema: `[{"id", "median_ns", "mean_ns", "min_ns", "max_ns",
/// "iters_per_sample", "samples", "throughput_elems",
/// "elements_per_sec"}, ...]`.
pub fn write_json(measurements: &[Measurement], path: &str) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        let sep = if i + 1 == measurements.len() { "" } else { "," };
        let tp = match m.throughput {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        let eps = match m.elements_per_sec() {
            Some(e) => format!("{e:.1}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}, \"throughput_elems\": {}, \"elements_per_sec\": {}}}{}\n",
            m.id.replace('"', "\\\""),
            m.median_ns,
            m.mean_ns,
            m.min_ns,
            m.max_ns,
            m.iters_per_sample,
            m.samples,
            tp,
            eps,
            sep
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Groups benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Defines `main()`: runs every group, then honors `CRITERION_JSON`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::new();
            $($group(&mut c);)+
            if let Ok(path) = std::env::var("CRITERION_JSON") {
                match $crate::write_json(c.measurements(), &path) {
                    Ok(()) => {
                        eprintln!("wrote {} measurements to {path}", c.measurements().len())
                    }
                    Err(e) => {
                        eprintln!("CRITERION_JSON write to {path} failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(100));
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
            g.finish();
        }
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "g/noop");
        assert_eq!(c.measurements()[1].id, "g/param/7");
        assert!(c.measurements()[0].median_ns >= 0.0);
        assert!(c.measurements()[0].elements_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn json_schema_is_stable() {
        let m = Measurement {
            id: "a/b".into(),
            median_ns: 10.0,
            mean_ns: 11.0,
            min_ns: 9.0,
            max_ns: 13.0,
            iters_per_sample: 100,
            samples: 5,
            throughput: Some(64),
        };
        let dir = std::env::temp_dir().join("criterion_shim_test.json");
        let path = dir.to_str().unwrap();
        write_json(&[m], path).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.starts_with("[\n"));
        assert!(body.contains("\"id\": \"a/b\""));
        assert!(body.contains("\"median_ns\": 10.0"));
        assert!(body.trim_end().ends_with(']'));
    }
}
