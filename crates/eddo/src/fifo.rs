//! The FIFO storage idiom.

use std::collections::VecDeque;

use crate::{AccessStats, EddoError};

/// A bounded first-in first-out queue — the simplest EDDO idiom (§3.2).
///
/// FIFOs restrict both access order and replacement policy to
/// first-in-first-out, which makes them cheap and trivially composable but
/// unusable when a dataflow needs multiple accesses within a tile. They
/// appear here both as the baseline idiom and as the building block of the
/// streaming region inside a [`crate::Tailor`].
///
/// # Example
///
/// ```
/// use tailors_eddo::Fifo;
///
/// let mut f = Fifo::new(2);
/// f.push(10)?;
/// f.push(20)?;
/// assert!(f.push(30).is_err()); // bounded
/// assert_eq!(f.pop()?, 10);
/// # Ok::<(), tailors_eddo::EddoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    queue: VecDeque<T>,
    capacity: usize,
    stats: AccessStats,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            stats: AccessStats::default(),
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy in elements.
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Remaining credits (free slots).
    pub fn credits(&self) -> usize {
        self.capacity - self.queue.len()
    }

    /// Whether the FIFO holds no data.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Enqueues an element at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::Full`] when no credits remain.
    pub fn push(&mut self, value: T) -> Result<(), EddoError> {
        if self.is_full() {
            return Err(EddoError::Full);
        }
        self.queue.push_back(value);
        self.stats.fills += 1;
        Ok(())
    }

    /// Dequeues the head element.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::Empty`] when nothing is enqueued.
    pub fn pop(&mut self) -> Result<T, EddoError> {
        let v = self.queue.pop_front().ok_or(EddoError::Empty)?;
        self.stats.reads += 1;
        self.stats.shrunk += 1;
        Ok(v)
    }

    /// Peeks at the head element without removing it.
    ///
    /// # Errors
    ///
    /// Returns [`EddoError::Empty`] when nothing is enqueued.
    pub fn peek(&self) -> Result<&T, EddoError> {
        self.queue.front().ok_or(EddoError::Empty)
    }

    /// Access counters accumulated so far.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order_is_fifo() {
        let mut f = Fifo::new(3);
        for i in 0..3 {
            f.push(i).unwrap();
        }
        assert!(f.is_full());
        assert_eq!(f.credits(), 0);
        for i in 0..3 {
            assert_eq!(f.pop().unwrap(), i);
        }
        assert!(f.is_empty());
        assert_eq!(f.pop(), Err(EddoError::Empty));
    }

    #[test]
    fn push_when_full_errors() {
        let mut f = Fifo::new(1);
        f.push(1).unwrap();
        assert_eq!(f.push(2), Err(EddoError::Full));
        // The failed push must not corrupt state.
        assert_eq!(f.occupancy(), 1);
        assert_eq!(*f.peek().unwrap(), 1);
    }

    #[test]
    fn credits_track_free_slots() {
        let mut f = Fifo::new(4);
        assert_eq!(f.credits(), 4);
        f.push('x').unwrap();
        assert_eq!(f.credits(), 3);
        f.pop().unwrap();
        assert_eq!(f.credits(), 4);
    }

    #[test]
    fn stats_count_operations() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop().unwrap();
        let s = f.stats();
        assert_eq!(s.fills, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.shrunk, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
