//! The three evaluated accelerator variants (paper §5.2): ExTensor-N,
//! ExTensor-P, and ExTensor-OB, as tile-plan constructors over a common
//! architecture.

use tailors_core::swiftiles::SwiftilesConfig;
use tailors_core::TilingStrategy;
use tailors_tensor::MatrixProfile;

use crate::arch::ArchConfig;
use crate::dataflow::{simulate, simulate_gridded, simulate_planned};
use crate::exec::{AutoPlanner, BufferParams, CostModel, ExecutionPlan, GridMode, MemBudget};
use crate::metrics::RunMetrics;
use crate::plan::TilePlan;

/// An accelerator variant: a tiling policy over the shared ExTensor
/// substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Variant {
    /// Original ExTensor without preprocessing: uniform-shape dense-safe
    /// tiles (coordinate-space size bounded by capacity) at both levels.
    ExTensorN,
    /// ExTensor with prescient uniform-shape tiling: the largest `K`-
    /// spanning panels whose fullest tile still fits each buffer.
    ExTensorP,
    /// ExTensor with overbooking: Swiftiles-sized panels (target rate `y`,
    /// sample parameter `k`) backed by Tailors at both levels.
    ExTensorOB {
        /// Target overbooking rate (paper default 0.10).
        y: f64,
        /// Swiftiles sample parameter (paper default 10).
        k: usize,
    },
}

/// The cacheable identity of a [`Variant`] (see [`Variant::cache_key`]):
/// the discriminant plus, for the overbooked variant, `y` by bit pattern
/// and `k` — so the key is `Eq + Hash` even though `Variant` carries an
/// `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKey {
    /// [`Variant::ExTensorN`].
    N,
    /// [`Variant::ExTensorP`].
    P,
    /// [`Variant::ExTensorOB`] with `y` captured via `f64::to_bits`.
    Ob {
        /// Bit pattern of the target overbooking rate.
        y_bits: u64,
        /// Swiftiles sample parameter.
        k: usize,
    },
}

impl Variant {
    /// The paper's default overbooked configuration (`y = 10 %, k = 10`).
    pub fn default_ob() -> Self {
        Variant::ExTensorOB { y: 0.10, k: 10 }
    }

    /// A hashable identity for this variant, for keying caches of derived
    /// artifacts (tile plans, execution plans, run metrics). Two variants
    /// produce equal keys iff they plan identically (`y` compares by bit
    /// pattern).
    pub fn cache_key(&self) -> VariantKey {
        match self {
            Variant::ExTensorN => VariantKey::N,
            Variant::ExTensorP => VariantKey::P,
            Variant::ExTensorOB { y, k } => VariantKey::Ob {
                y_bits: y.to_bits(),
                k: *k,
            },
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::ExTensorN => "ExTensor-N",
            Variant::ExTensorP => "ExTensor-P",
            Variant::ExTensorOB { .. } => "ExTensor-OB",
        }
    }

    /// Builds this variant's tile plan for a workload.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no nonzeros or an overbooked variant has
    /// an invalid `y`.
    pub fn plan(&self, profile: &MatrixProfile, arch: &ArchConfig) -> TilePlan {
        let cap_gb = arch.tile_capacity();
        let cap_pe = arch.pe_operand_capacity();
        match self {
            Variant::ExTensorN => {
                // The paper's ExTensor-N uses fixed 128×128 coordinate-space
                // PE tiles regardless of sparsity (§5.2). Keeping output
                // accumulation on-chip then forces the schedule to complete
                // full-K strips of 128 rows at a time, and every strip
                // triggers a fresh pass over the matching slices of B — the
                // "very low buffer utilization" row of Table 1. Strips are
                // dense-safe, so occupancy accounting never applies.
                let side = 128usize;
                TilePlan {
                    gb_rows_a: side,
                    gb_cols_b: side,
                    pe_rows_a: side,
                    pe_cols_b: side,
                    full_k: false,
                    overbooking: false,
                }
                .normalized(profile.nrows())
            }
            Variant::ExTensorP => {
                let gb = TilingStrategy::PrescientUniformShape.choose(profile, cap_gb);
                let pe = TilingStrategy::PrescientUniformShape.choose(profile, cap_pe);
                TilePlan {
                    gb_rows_a: gb.rows_per_tile,
                    gb_cols_b: gb.rows_per_tile,
                    pe_rows_a: pe.rows_per_tile,
                    pe_cols_b: pe.rows_per_tile,
                    full_k: true,
                    overbooking: false,
                }
                .normalized(profile.nrows())
            }
            Variant::ExTensorOB { y, k } => {
                let config =
                    SwiftilesConfig::new(*y, *k).expect("overbooked variant requires valid y");
                let gb = TilingStrategy::Overbooked(config).choose(profile, cap_gb);
                let pe = TilingStrategy::Overbooked(config).choose(profile, cap_pe);
                TilePlan {
                    gb_rows_a: gb.rows_per_tile,
                    gb_cols_b: gb.rows_per_tile,
                    pe_rows_a: pe.rows_per_tile,
                    pe_cols_b: pe.rows_per_tile,
                    full_k: true,
                    overbooking: true,
                }
                .normalized(profile.nrows())
            }
        }
    }

    /// The memory-governed [`ExecutionPlan`] for a functional replay of
    /// this variant's tiling: the variant picks the `rows × cols` tile
    /// grid, `budget` groups streamed tiles into scratch-bounded column
    /// blocks.
    ///
    /// # Panics
    ///
    /// As [`Variant::plan`].
    pub fn execution_plan(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
    ) -> ExecutionPlan {
        let tile = self.plan(profile, arch);
        ExecutionPlan::for_tile_plan(profile.nrows(), profile.ncols(), &tile, budget)
    }

    /// [`Variant::execution_plan`] through the budget-aware
    /// [`AutoPlanner`]: the variant still picks the streamed tile width
    /// (`gb_cols_b`) and the buffer discipline, but the panel height is
    /// co-optimized against the column-block width `budget` induces,
    /// with the variant's own `gb_rows_a` as the baseline candidate. The
    /// refetch term is priced against the architecture's working-tile
    /// capacity — the same buffer a functional replay drives — so the
    /// engine's internal auto plan
    /// ([`functional::auto_execution_plan`](crate::functional::auto_execution_plan))
    /// lands on the identical tiling and serve-cache replays stay exact.
    ///
    /// # Panics
    ///
    /// As [`Variant::plan`].
    pub fn auto_execution_plan(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
    ) -> ExecutionPlan {
        self.auto_execution_plan_for(profile, arch, budget, &self.plan(profile, arch))
    }

    /// [`Variant::auto_execution_plan`] with the tile plan already on
    /// hand — the entry point for callers that have paid for
    /// [`Variant::plan`] (the Swiftiles-sampling stage for the overbooked
    /// variant) and must not pay for it twice: [`Variant::run_auto`] and
    /// the serving layer's plan-tier miss path.
    pub fn auto_execution_plan_for(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
        tile: &TilePlan,
    ) -> ExecutionPlan {
        self.auto_execution_plan_costed(profile, arch, budget, tile, CostModel::UNIFORM)
    }

    /// [`Variant::auto_execution_plan_for`] with an explicit planner
    /// [`CostModel`]: the serving layer's plan-tier miss path passes its
    /// configured (possibly calibrated) model here and versions the
    /// cache key with [`CostModel::key`]. [`CostModel::UNIFORM`]
    /// reproduces [`Variant::auto_execution_plan_for`] exactly; any
    /// model only moves which tiling wins, never the replayed results.
    pub fn auto_execution_plan_costed(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
        tile: &TilePlan,
        model: CostModel,
    ) -> ExecutionPlan {
        AutoPlanner::new(profile, tile.gb_cols_b.max(1), budget)
            .with_buffer(BufferParams {
                capacity: (arch.tile_capacity() as usize).max(1),
                fifo_region: arch.gb_fifo_region() as usize,
                overbooking: tile.overbooking,
            })
            .with_baseline(tile.gb_rows_a.max(1))
            .with_cost_model(model)
            .plan()
    }

    /// Plans and simulates this variant on a workload in one call.
    pub fn run(&self, profile: &MatrixProfile, arch: &ArchConfig) -> RunMetrics {
        simulate(profile, arch, self.plan(profile, arch))
    }

    /// [`Variant::run`] under a per-thread scratch budget; hardware counts
    /// are unchanged, and the induced execution plan is recorded in
    /// [`RunMetrics::scratch`].
    pub fn run_budgeted(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
    ) -> RunMetrics {
        self.run_gridded(profile, arch, budget, GridMode::Panels)
    }

    /// [`Variant::run_budgeted`] with an explicit functional [`GridMode`]:
    /// hardware counts are still unchanged, and the recorded
    /// [`RunMetrics::scratch`] additionally reports how many independent
    /// work units a functional replay would fan out
    /// (`panels × blocks` under [`GridMode::Grid2D`]).
    pub fn run_gridded(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
        grid: GridMode,
    ) -> RunMetrics {
        simulate_gridded(profile, arch, self.plan(profile, arch), budget, grid)
    }

    /// [`Variant::run_gridded`] with the *software* execution plan chosen
    /// by the budget-aware auto planner
    /// ([`Variant::auto_execution_plan`]) instead of fixed at the
    /// variant's panel height. The modeled hardware counts are untouched
    /// — the variant's [`TilePlan`] still drives the dataflow — so the
    /// metrics differ from [`Variant::run_gridded`] only in
    /// [`RunMetrics::scratch`] (block count, scratch bytes, parallel
    /// width). Strictly opt-in: no existing entry point routes here.
    ///
    /// # Panics
    ///
    /// As [`Variant::plan`].
    pub fn run_auto(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        budget: MemBudget,
        grid: GridMode,
    ) -> RunMetrics {
        let tile = self.plan(profile, arch);
        let exec = self.auto_execution_plan_for(profile, arch, budget, &tile);
        simulate_planned(profile, arch, tile, &exec, grid)
    }

    /// [`Variant::run_gridded`] with the planning stages precomputed: the
    /// tile plan (`tile`, from [`Variant::plan`] — the expensive stage for
    /// the Swiftiles-governed variant, which samples occupancies) and the
    /// memory-governed execution plan (`exec`, from
    /// [`Variant::execution_plan`] with the same budget).
    ///
    /// This is the cache-consumer entry point: given the same profile and
    /// plans, it is a pure function, bit-identical to
    /// [`Variant::run_gridded`] — `tailors-serve` keys both plans by
    /// (matrix identity, [`Variant::cache_key`],
    /// [`ArchConfig::cache_key`](crate::arch::ArchConfig::cache_key),
    /// budget) and replays them here, skipping plan construction on hot
    /// requests.
    ///
    /// # Panics
    ///
    /// As [`simulate_planned`]; additionally (debug builds) if `exec` was
    /// not derived from `tile` under `exec.budget()`.
    pub fn run_planned(
        &self,
        profile: &MatrixProfile,
        arch: &ArchConfig,
        tile: &TilePlan,
        exec: &ExecutionPlan,
        grid: GridMode,
    ) -> RunMetrics {
        simulate_planned(profile, arch, *tile, exec, grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailors_tensor::gen::GenSpec;

    fn profile() -> MatrixProfile {
        GenSpec::power_law(60_000, 60_000, 600_000)
            .seed(21)
            .generate()
            .profile()
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::ExTensorN.name(), "ExTensor-N");
        assert_eq!(Variant::ExTensorP.name(), "ExTensor-P");
        assert_eq!(Variant::default_ob().name(), "ExTensor-OB");
    }

    #[test]
    fn n_plan_is_dense_safe() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let plan = Variant::ExTensorN.plan(&p, &arch);
        assert!(!plan.full_k);
        assert!(!plan.overbooking);
        // A dense tile of this shape fits the operand partition.
        assert!((plan.gb_rows_a as u64) * (plan.gb_rows_a as u64) <= arch.gb_operand_capacity());
    }

    #[test]
    fn p_plan_never_overbooks() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let m = Variant::ExTensorP.run(&p, &arch);
        assert_eq!(m.reuse.overbooked_a_tiles, 0);
        assert_eq!(m.dram.overbook_extra, 0);
    }

    #[test]
    fn ob_uses_larger_tiles_than_p() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let plan_p = Variant::ExTensorP.plan(&p, &arch);
        let plan_ob = Variant::default_ob().plan(&p, &arch);
        assert!(
            plan_ob.gb_rows_a >= plan_p.gb_rows_a,
            "overbooking should allow at least prescient-sized tiles \
             (ob {} vs p {})",
            plan_ob.gb_rows_a,
            plan_p.gb_rows_a
        );
        assert!(plan_ob.overbooking);
    }

    #[test]
    fn cache_keys_distinguish_variants() {
        assert_eq!(
            Variant::ExTensorN.cache_key(),
            Variant::ExTensorN.cache_key()
        );
        assert_ne!(
            Variant::ExTensorN.cache_key(),
            Variant::ExTensorP.cache_key()
        );
        assert_eq!(
            Variant::default_ob().cache_key(),
            Variant::ExTensorOB { y: 0.10, k: 10 }.cache_key()
        );
        assert_ne!(
            Variant::default_ob().cache_key(),
            Variant::ExTensorOB { y: 0.20, k: 10 }.cache_key()
        );
        assert_ne!(
            Variant::default_ob().cache_key(),
            Variant::ExTensorOB { y: 0.10, k: 11 }.cache_key()
        );
    }

    #[test]
    fn run_planned_replays_cached_plans_bit_identically() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let budget = MemBudget::mib(64);
        for v in [
            Variant::ExTensorN,
            Variant::ExTensorP,
            Variant::default_ob(),
        ] {
            for grid in [GridMode::Panels, GridMode::Grid2D] {
                let direct = v.run_gridded(&p, &arch, budget, grid);
                let tile = v.plan(&p, &arch);
                let exec = v.execution_plan(&p, &arch, budget);
                let replayed = v.run_planned(&p, &arch, &tile, &exec, grid);
                assert_eq!(direct, replayed, "{} {grid}", v.name());
                assert_eq!(direct.cycles.to_bits(), replayed.cycles.to_bits());
                assert_eq!(direct.energy_pj.to_bits(), replayed.energy_pj.to_bits());
            }
        }
    }

    #[test]
    fn paper_ordering_on_a_heavy_tailed_workload() {
        let p = profile();
        let arch = ArchConfig::extensor();
        let n = Variant::ExTensorN.run(&p, &arch);
        let pp = Variant::ExTensorP.run(&p, &arch);
        let ob = Variant::default_ob().run(&p, &arch);
        // Fig. 7's ordering: P beats N, OB beats P on variable tensors.
        assert!(pp.speedup_over(&n) > 1.0, "P should beat N");
        assert!(
            ob.speedup_over(&pp) > 1.0,
            "OB should beat P on a heavy-tailed tensor: {}",
            ob.speedup_over(&pp)
        );
        // Fig. 8's ordering for energy.
        assert!(ob.energy_gain_over(&n) > 1.0);
    }
}
