//! Wire-codec round-trip properties: arbitrary requests and replies
//! encode → decode bit-identically (floats travel as bit patterns, so
//! even NaNs and signed zeros survive), and malformed / truncated /
//! mutated lines come back as typed protocol errors — never panics.

use proptest::prelude::*;

use tailors_serve::wire::{decode_reply, decode_request, encode_reply, encode_request, Json};
use tailors_serve::{FunctionalRequest, OverloadReason, Reply, ServeError, SimRequest, Work};
use tailors_sim::functional::{FunctionalConfig, FunctionalResult};
use tailors_sim::{ArchConfig, GridMode, MemBudget, Variant};
use tailors_tensor::gen::GenSpec;
use tailors_workloads::{Workload, WorkloadClass};

const NAMES: [&str; 5] = [
    "cant",
    "email-Enron",
    "webbase-1M",
    "roadNet-CA",
    "not-a-suite-name",
];

fn workload_from(
    name_idx: usize,
    dims: (usize, usize, usize),
    class_sel: u8,
    sparsity_bits: u64,
    variability_bits: u64,
    seed: u64,
) -> Workload {
    let class = match class_sel % 3 {
        0 => WorkloadClass::LinearSystem,
        1 => WorkloadClass::Graph,
        _ => WorkloadClass::RoadNetwork,
    };
    Workload {
        // Decoding interns unknown names, so a non-suite name must
        // round-trip too; suite names must come back pointer-stable.
        name: match tailors_workloads::by_name(NAMES[name_idx % NAMES.len()]) {
            Some(w) => w.name,
            None => "not-a-suite-name",
        },
        nrows: dims.0,
        ncols: dims.1,
        target_nnz: dims.2,
        class,
        // Raw bit patterns: includes NaNs, infinities, subnormals, -0.0.
        paper_sparsity: f64::from_bits(sparsity_bits),
        variability: f64::from_bits(variability_bits),
        seed,
    }
}

fn variant_from(sel: u8, y_bits: u64, k: usize) -> Variant {
    match sel % 3 {
        0 => Variant::ExTensorN,
        1 => Variant::ExTensorP,
        _ => Variant::ExTensorOB {
            y: f64::from_bits(y_bits),
            k,
        },
    }
}

fn assert_workloads_bit_eq(a: &Workload, b: &Workload) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.nrows, b.nrows);
    assert_eq!(a.ncols, b.ncols);
    assert_eq!(a.target_nnz, b.target_nnz);
    assert_eq!(a.class, b.class);
    assert_eq!(a.paper_sparsity.to_bits(), b.paper_sparsity.to_bits());
    assert_eq!(a.variability.to_bits(), b.variability.to_bits());
    assert_eq!(a.seed, b.seed);
}

fn assert_variants_bit_eq(a: Variant, b: Variant) {
    match (a, b) {
        (Variant::ExTensorN, Variant::ExTensorN) | (Variant::ExTensorP, Variant::ExTensorP) => {}
        (Variant::ExTensorOB { y: ya, k: ka }, Variant::ExTensorOB { y: yb, k: kb }) => {
            assert_eq!(ya.to_bits(), yb.to_bits());
            assert_eq!(ka, kb);
        }
        (a, b) => panic!("variant mismatch: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sim_requests_round_trip_bitwise(
        id in 0u64..u64::MAX,
        name_idx in 0usize..NAMES.len(),
        dims in (1usize..1_000_000, 1usize..1_000_000, 0usize..10_000_000),
        class_sel in 0u8..3,
        wl_bits in (0u64..u64::MAX, 0u64..u64::MAX),
        seed in 0u64..u64::MAX,
        variant_sel in 0u8..3,
        y_bits in 0u64..u64::MAX,
        k in 1usize..100,
        arch_scale_denom in 1u32..512,
        budget in (proptest::bool::ANY, 0u64..u64::MAX),
        flags in (proptest::bool::ANY, proptest::bool::ANY),
    ) {
        let req = SimRequest {
            workload: workload_from(name_idx, dims, class_sel, wl_bits.0, wl_bits.1, seed),
            variant: variant_from(variant_sel, y_bits, k),
            arch: ArchConfig::extensor().scaled(1.0 / f64::from(arch_scale_denom)),
            budget: if budget.0 { MemBudget::Unbounded } else { MemBudget::Bytes(budget.1) },
            grid: if flags.0 { GridMode::Grid2D } else { GridMode::Panels },
            auto_plan: flags.1,
        };
        let line = encode_request(id, &Work::Sim(req.clone()));
        prop_assert!(!line.contains('\n'), "one request must stay one line");
        let (decoded_id, decoded) = decode_request(&line).expect("round trip");
        prop_assert_eq!(decoded_id, id);
        let Work::Sim(d) = decoded else { panic!("wrong kind") };
        assert_workloads_bit_eq(&d.workload, &req.workload);
        assert_variants_bit_eq(d.variant, req.variant);
        prop_assert_eq!(d.arch, req.arch);
        prop_assert_eq!(d.budget, req.budget);
        prop_assert_eq!(d.grid, req.grid);
        prop_assert_eq!(d.auto_plan, req.auto_plan);
    }

    #[test]
    fn functional_requests_round_trip_bitwise(
        name_idx in 0usize..NAMES.len(),
        dims in (1usize..100_000, 1usize..100_000, 0usize..1_000_000),
        threads in 1usize..64,
        budget_bytes in 1u64..u64::MAX,
    ) {
        let req = FunctionalRequest {
            workload: workload_from(name_idx, dims, 1, 0, 0, 7),
            variant: Variant::default_ob(),
            arch: ArchConfig::extensor(),
            budget: MemBudget::Bytes(budget_bytes),
            grid: GridMode::Grid2D,
            auto_plan: true,
            threads,
        };
        let line = encode_request(3, &Work::Functional(Box::new(req.clone())));
        let (_, decoded) = decode_request(&line).expect("round trip");
        let Work::Functional(d) = decoded else { panic!("wrong kind") };
        assert_workloads_bit_eq(&d.workload, &req.workload);
        prop_assert_eq!(d.threads, req.threads);
        prop_assert_eq!(d.budget, req.budget);
        prop_assert_eq!(d.auto_plan, req.auto_plan);
    }

    #[test]
    fn functional_replies_round_trip_bitwise(
        n in 2usize..48,
        nnz in 0usize..300,
        seed in 0u64..10_000,
        fetches in (0u64..u64::MAX, 0u64..u64::MAX),
        overbooked in 0usize..1_000,
    ) {
        // A real generated CSR payload (row_ptr / cols / value bits all
        // cross the wire).
        let z = GenSpec::uniform(n, n, nnz.min(n * n)).seed(seed).generate();
        let reply = Reply::Functional(Box::new(tailors_serve::FunctionalResponse {
            config: FunctionalConfig {
                capacity: 1 + n,
                fifo_region: n / 2,
                rows_a: 1 + n / 3,
                cols_b: 1 + n / 2,
                overbooking: seed % 2 == 0,
                mem_budget: MemBudget::mib(4),
                grid: GridMode::Panels,
                auto_plan: false,
            },
            result: FunctionalResult {
                z: z.clone(),
                dram_a_fetches: fetches.0,
                dram_b_fetches: fetches.1,
                overbooked_a_tiles: overbooked,
            },
            hits: tailors_serve::CacheHits { tensor: true, profile: false, plan: true },
        }));
        let line = encode_reply(Some(9), &Ok(reply));
        let (id, outcome) = decode_reply(&line).expect("round trip");
        prop_assert_eq!(id, Some(9));
        let Ok(Reply::Functional(d)) = outcome else { panic!("wrong reply") };
        prop_assert_eq!(d.result.z.nrows(), z.nrows());
        prop_assert_eq!(d.result.z.row_ptr(), z.row_ptr());
        prop_assert_eq!(d.result.z.col_indices(), z.col_indices());
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(d.result.z.values()), bits(z.values()));
        prop_assert_eq!(d.result.dram_a_fetches, fetches.0);
        prop_assert_eq!(d.result.dram_b_fetches, fetches.1);
        prop_assert_eq!(d.result.overbooked_a_tiles, overbooked);
    }

    #[test]
    fn error_replies_round_trip(
        sel in 0u8..7,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        msg_chars in proptest::collection::vec(32u8..127, 0..60),
        panicked in proptest::bool::ANY,
    ) {
        let message: String = msg_chars.iter().map(|&c| c as char).collect();
        let err = match sel {
            0 => ServeError::Overloaded(OverloadReason::MailboxFull { capacity: a as usize }),
            1 => ServeError::Overloaded(OverloadReason::TensorBytes { estimated: a, limit: b }),
            2 => ServeError::Overloaded(OverloadReason::PlanPressure {
                pressure: (a % 1000) as f64 / 500.0,
                hit_rate: (b % 1000) as f64 / 1000.0,
            }),
            3 => ServeError::Timeout {
                deadline: std::time::Duration::new(a % (1 << 40), (b % 1_000_000_000) as u32),
            },
            4 => ServeError::Faulted { panic: panicked, message },
            5 => ServeError::BadRequest(message),
            _ => ServeError::Shutdown,
        };
        let line = encode_reply(Some(a), &Err(err.clone()));
        let (id, outcome) = decode_reply(&line).expect("round trip");
        prop_assert_eq!(id, Some(a));
        prop_assert_eq!(outcome.unwrap_err(), err);
    }

    /// Truncating a request line at any interior byte boundary must yield
    /// a typed protocol error — never a panic, never a bogus decode.
    #[test]
    fn truncated_requests_error_cleanly(
        cut_frac in 0u32..1000,
        variant_sel in 0u8..3,
    ) {
        let req = SimRequest::suite("cant", 1.0 / 256.0, variant_from(variant_sel, 0, 10))
            .expect("suite workload");
        let line = encode_request(1, &Work::Sim(req));
        let mut cut = (line.len() as u64 * u64::from(cut_frac) / 1000) as usize;
        while cut < line.len() && !line.is_char_boundary(cut) {
            cut += 1;
        }
        if cut < line.len() {
            prop_assert!(decode_request(&line[..cut]).is_err());
        }
    }

    /// Arbitrary byte soup (valid UTF-8 or not after lossy conversion)
    /// must come back as Ok or Err — decoding never panics. The server
    /// turns every Err into a protocol-level error reply.
    #[test]
    fn garbage_never_panics_the_decoder(
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
        let _ = decode_request(&text);
        let _ = decode_reply(&text);
    }

    /// Corrupting one byte of a valid line must never panic, and if the
    /// result still decodes it must carry the same id (the mutation can
    /// only have hit a payload field, which decodes to *different* typed
    /// values, not to UB).
    #[test]
    fn single_byte_corruption_is_contained(
        pos_frac in 0u32..1000,
        replacement in 32u8..127,
    ) {
        let req = SimRequest::suite("email-Enron", 1.0 / 256.0, Variant::ExTensorP)
            .expect("suite workload");
        let line = encode_request(77, &Work::Sim(req));
        let mut bytes = line.into_bytes();
        let pos = (bytes.len() as u64 * u64::from(pos_frac) / 1000) as usize % bytes.len();
        bytes[pos] = replacement;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let _ = decode_request(&mutated);
    }
}
