//! Offline, API-compatible shim for the subset of `rand` 0.8 this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}` and
//! `distributions::{Distribution, WeightedIndex}`.
//!
//! The build environment has no network access, so the workspace vendors
//! this shim instead of the real crate (see the workspace `Cargo.toml`).
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the synthetic-tensor generators and
//! Swiftiles sampling require. Streams differ from the real `StdRng`
//! (ChaCha12), so regenerated tensors differ in the concrete nonzero
//! placement but not in any distributional property the tests assert.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a `T` uniformly from the type's natural domain (the shim's
/// equivalent of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by rejection-free 128-bit multiply
/// (Lemire's method without the rejection loop; bias is < 2^-64 per draw,
/// irrelevant for synthetic data generation).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The trait carrying the ergonomic sampling methods; blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its natural uniform domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's stand-in for the
    /// real crate's ChaCha12-based `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or not finite, or all weights were zero.
        InvalidWeight,
    }

    /// Samples indices in `0..weights.len()` proportionally to the weights.
    ///
    /// Built on a cumulative-sum table + binary search, like the real crate.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from a slice of non-negative weights.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] on empty, negative, non-finite or
        /// all-zero weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: core::borrow::Borrow<f64>,
        {
            use core::borrow::Borrow;
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = rng.gen::<f64>() * self.total;
            // partition_point: first index whose cumulative weight exceeds x.
            let i = self.cumulative.partition_point(|&c| c <= x);
            i.min(self.cumulative.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        assert!(counts[2] > 5 * counts[0], "9:1 weight ratio: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(WeightedIndex::new([] as [f64; 0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([f64::NAN]).is_err());
    }
}
