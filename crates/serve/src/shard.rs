//! Sharded multi-worker routing: a consistent-hash ring over N
//! `serve --wire` shard processes, with LPT-balanced batch fan-out,
//! typed failover, and elastic membership.
//!
//! A single wire runtime serves one process as fast as the hardware
//! allows; the ROADMAP north star needs more than one worker. The
//! [`ShardRouter`] here is the thin layer in front of a fleet of shard
//! processes:
//!
//! * **Placement** — every request's workload spec resolves to its
//!   [`MatrixId`] (content hash + shape; memoized per spec exactly as
//!   [`SimService`](crate::SimService) memoizes it), and a
//!   consistent-hash [`HashRing`] maps that identity to a *primary*
//!   shard. Each shard therefore sees a stable slice of the corpus and
//!   its cache tiers (and PR 8 TSPILL corpus) stay hot for that slice;
//!   adding or removing a shard moves only ~K/N keys instead of
//!   reshuffling everything. [`Placement::Replicated`]`(r)` widens the
//!   owner set to the first R live candidates with read-one semantics:
//!   the primary answers, and a dead primary costs a zero-backoff hop to
//!   an already-designated replica instead of a discovery timeout.
//! * **Balance** — [`ShardRouter::submit_batch`] groups a batch by
//!   primary shard, then splits each shard's group across that shard's
//!   connection pool in cost-balanced LPT bins using the *same* cost
//!   currency [`SimService::submit_batch`](crate::SimService::submit_batch)
//!   uses for its thread bins. Replies reassemble in request order, so
//!   batch payloads keep the bit-exact determinism contract: every shard
//!   computes the same bytes for the same request, and order is restored
//!   by index.
//! * **Failover** — shards fail in typed ways. A transport failure
//!   (connection refused/reset after the wire client's own
//!   reconnect-and-retry is exhausted) or a [`ServeError::Shutdown`]
//!   reply marks the shard **down** and the request moves clockwise to
//!   the next live shard on the ring. An exhausted *retryable* overload
//!   ([`ServeError::retryable`]) spills to the next shard too, but does
//!   **not** mark the shard down — it is busy, not gone. Deterministic
//!   outcomes (`Faulted`, `BadRequest`, `Timeout`) return to the caller
//!   unchanged: every shard would answer the same, so failing over would
//!   only repeat the answer slower.
//! * **Recovery** — down marks are no longer sticky: when
//!   [`RouterConfig::probe_interval`] is set, a background prober
//!   periodically pings every down shard ([`WireClient::ping`] — a
//!   session-level liveness op that never enters the shard's ledger) and
//!   a successful pong clears the mark, so a kill is transient.
//!   [`ShardRouter::probe_now`] runs the same sweep synchronously for
//!   deterministic tests and tooling.
//! * **Elastic membership** — [`ShardRouter::join`] dials a new shard
//!   and rebuilds the ring in place; [`ShardRouter::leave`] retires one.
//!   Both take the fleet write lock, which drains in-flight requests
//!   (every [`ShardRouter::submit`] holds the read lock for its whole
//!   route walk), and the [`HashRing`] churn property guarantees only
//!   the moved member's keys remap. Departed members keep their slot
//!   index forever (a tombstone), so surviving members' vnode positions
//!   — and therefore every unaffected key's owner — never change.
//! * **Warm-up replay** — the router keeps a bounded LRU log of
//!   recently served request specs per routing key. On join and on
//!   probe recovery it replays the keys the (re)admitted shard now owns
//!   against it on the server's **low-priority lane** (`"warm":true`
//!   envelopes), so the shard's tensor/profile/plan tiers are hot before
//!   live traffic arrives — recovery without a cold-miss cliff. Warm
//!   replies are counted in separate `warmups` counters and never touch
//!   the router ledger or per-shard `replies`.
//!
//! The router keeps the runtime's accounting invariant across the fleet:
//! [`RouterStats::accounted`]` == submitted` whenever no submission is in
//! flight, no matter how many shards died, joined, left, or recovered.
//! One router submission is one ledger entry — internal retries,
//! reconnects, failover hops, probes, and warm replays are observability
//! counters, never extra ledger rows.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tailors_sim::balanced_partition;

use crate::lru::Lru;
use crate::runtime::{Reply, RetryPolicy, ServeError, Work};
use crate::service::{request_cost, MatrixId, SpecKey};
use crate::sync::{PoisonFreeCondvar, PoisonFreeMutex, PoisonFreeRwLock};
use crate::wire::{WireClient, WireError};

// FNV-1a, the same hash family `CsrMatrix::content_hash` uses — tiny,
// dependency-free, and well-mixed enough for ring placement.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A consistent-hash ring: each member owns `vnodes` pseudo-random
/// positions on the `u64` circle, and a key belongs to the member owning
/// the first position at or clockwise-after the key's own position.
///
/// Virtual nodes smooth the per-member share toward K/N, and consistency
/// bounds churn: a member's vnode positions depend only on its **id**
/// (not on who else is on the ring), so adding or removing a member only
/// reassigns keys whose first live position belonged to it — every other
/// key's walk is unchanged. The ring is deterministic in (member ids,
/// vnodes): two routers built with the same parameters agree on every
/// assignment.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(position, member)` pairs.
    vnodes: Vec<(u64, usize)>,
    /// The member ids on the ring, sorted ascending.
    members: Vec<usize>,
    /// One past the largest member id — the length a `down`/`seen` mask
    /// indexed by member id must have.
    slots: usize,
}

impl HashRing {
    /// A ring over members `0..shards` with `vnodes` positions each.
    ///
    /// # Panics
    ///
    /// If `shards` or `vnodes` is zero.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards > 0, "a ring needs at least one shard");
        let members: Vec<usize> = (0..shards).collect();
        Self::over(&members, vnodes)
    }

    /// A ring over an explicit set of member ids (duplicates collapse)
    /// with `vnodes` positions each. Member ids need not be contiguous:
    /// an elastic fleet keeps a departed member's slot as a tombstone, so
    /// a live fleet of slots `{0, 2, 3}` is a ring over exactly those
    /// ids — and every surviving member's vnode positions are the same
    /// ones it had before the departure.
    ///
    /// # Panics
    ///
    /// If `members` is empty or `vnodes` is zero.
    pub fn over(members: &[usize], vnodes: usize) -> HashRing {
        assert!(!members.is_empty(), "a ring needs at least one member");
        assert!(vnodes > 0, "a ring needs at least one vnode per member");
        let mut members: Vec<usize> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut positions = Vec::with_capacity(members.len() * vnodes);
        for &member in &members {
            for v in 0..vnodes {
                let mut bytes = [0u8; 16];
                bytes[..8].copy_from_slice(&(member as u64).to_le_bytes());
                bytes[8..].copy_from_slice(&(v as u64).to_le_bytes());
                positions.push((fnv1a(FNV_OFFSET, &bytes), member));
            }
        }
        // Sort by (position, member) so equal positions tie-break
        // deterministically.
        positions.sort_unstable();
        let slots = members.last().copied().unwrap_or(0) + 1;
        HashRing {
            vnodes: positions,
            members,
            slots,
        }
    }

    /// Number of members on the ring.
    pub fn shards(&self) -> usize {
        self.members.len()
    }

    /// The member ids on the ring, sorted ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// One past the largest member id (the mask length
    /// [`HashRing::assign_excluding`] expects).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// The key position of a matrix identity: all four identity fields
    /// feed the hash so shape-differing matrices with colliding content
    /// hashes still spread.
    fn position(id: &MatrixId) -> u64 {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&id.hash.to_le_bytes());
        bytes[8..16].copy_from_slice(&(id.nrows as u64).to_le_bytes());
        bytes[16..24].copy_from_slice(&(id.ncols as u64).to_le_bytes());
        bytes[24..].copy_from_slice(&(id.nnz as u64).to_le_bytes());
        fnv1a(FNV_OFFSET, &bytes)
    }

    /// Index of the first vnode at or clockwise-after `id`'s position.
    fn first_vnode(&self, id: &MatrixId) -> usize {
        let pos = Self::position(id);
        match self.vnodes.binary_search(&(pos, 0)) {
            Ok(i) => i,
            Err(i) if i == self.vnodes.len() => 0, // wrap
            Err(i) => i,
        }
    }

    /// The member owning `id` when every member is live.
    pub fn assign(&self, id: &MatrixId) -> usize {
        self.vnodes[self.first_vnode(id)].1
    }

    /// The member owning `id` when the members flagged in `down` are
    /// excluded: the first clockwise position belonging to a live member.
    /// `None` when every member is down.
    ///
    /// Consistency guarantee: if [`HashRing::assign`]`(id)` is live in
    /// `down`, this returns exactly that member — taking members down
    /// never moves keys the downed members did not own.
    ///
    /// # Panics
    ///
    /// If `down` is shorter than [`HashRing::slots`].
    pub fn assign_excluding(&self, id: &MatrixId, down: &[bool]) -> Option<usize> {
        assert!(
            down.len() >= self.slots,
            "down mask must cover every member slot"
        );
        self.candidates(id).find(|&s| !down[s])
    }

    /// All members in clockwise ring order from `id`'s position, each
    /// once: the failover order. The first element is
    /// [`HashRing::assign`]`(id)`.
    pub fn candidates(&self, id: &MatrixId) -> impl Iterator<Item = usize> + '_ {
        let start = self.first_vnode(id);
        let mut seen = vec![false; self.slots];
        let n = self.vnodes.len();
        (0..n).filter_map(move |step| {
            let member = self.vnodes[(start + step) % n].1;
            if seen[member] {
                None
            } else {
                seen[member] = true;
                Some(member)
            }
        })
    }

    /// The replica set for `id` under R-way placement: the first
    /// `r.max(1)` members in candidate order (so the primary is always
    /// `replicas(..)[0]`). Degenerate `r >= shards()` clamps naturally to
    /// every member, each once.
    pub fn replicas(&self, id: &MatrixId, r: usize) -> Vec<usize> {
        self.candidates(id).take(r.max(1)).collect()
    }
}

/// Where a key's requests may land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Each key is owned by its single primary; failover discovers a
    /// survivor clockwise when the primary dies (one transport-error
    /// discovery cost per down primary).
    Primary,
    /// Each key is owned by the first R live candidates on the ring with
    /// read-one semantics: the primary answers, and while cheaper
    /// replicas remain the router fails over after a **single**
    /// zero-backoff attempt — a kill costs no reconnect-retry ladder and
    /// no discovery timeout, because the fallback owner is already
    /// designated (and kept warm by membership replay). `Replicated(0)`
    /// and `Replicated(1)` behave like `Primary`.
    Replicated(usize),
}

/// Sizing knobs for a [`ShardRouter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Wire connections dialed per shard up front. Batch fan-out splits a
    /// shard's sub-batch across its connections in LPT bins; the pool
    /// grows past this high-water mark only if checkout finds it empty.
    pub connections: usize,
    /// Virtual nodes per shard on the [`HashRing`].
    pub vnodes: usize,
    /// Per-call retry policy handed to
    /// [`WireClient::call_with_retry`] — governs in-place reconnects and
    /// retryable-overload backoff *within* one shard, before the router
    /// considers moving the request.
    pub retry: RetryPolicy,
    /// How requests map to owners (see [`Placement`]).
    pub placement: Placement,
    /// Health-probe cadence for down-marked shards. `None` (the default)
    /// disables the background prober — down marks stay sticky unless
    /// [`ShardRouter::probe_now`] is called, exactly PR 9's semantics.
    /// Deployments that want self-healing arm it explicitly (the serve
    /// bin's `--probe-ms`).
    pub probe_interval: Option<Duration>,
    /// Dial attempts a pool checkout may spend when the pool is empty
    /// before giving up with a typed [`PoolError`] — the cap that keeps
    /// an empty pool on a dead shard from redialing unboundedly.
    pub redials: u32,
    /// Routing keys the warm-up log remembers (LRU-bounded). Zero
    /// disables warm-up replay.
    pub warmup_keys: usize,
    /// Distinct request specs remembered per routing key (oldest
    /// forgotten first). Zero disables warm-up replay.
    pub warmup_specs_per_key: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            connections: 2,
            vnodes: 64,
            retry: RetryPolicy::default(),
            placement: Placement::Primary,
            probe_interval: None,
            redials: 2,
            warmup_keys: 128,
            warmup_specs_per_key: 4,
        }
    }
}

/// Why a pool checkout failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The pool was empty and every capped dial attempt failed.
    DialExhausted {
        /// Dial attempts made before giving up.
        attempts: u32,
        /// The last dial error observed.
        last: String,
    },
}

impl core::fmt::Display for PoolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PoolError::DialExhausted { attempts, last } => {
                write!(
                    f,
                    "pool empty and {attempts} dial attempt(s) failed: {last}"
                )
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Why a membership operation was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipError {
    /// The member id names no slot this router has ever had.
    UnknownShard(usize),
    /// The member already left the fleet.
    AlreadyDeparted(usize),
    /// The operation would leave the fleet empty — a router with no
    /// members cannot route; shut it down instead.
    LastShard,
}

impl core::fmt::Display for MembershipError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MembershipError::UnknownShard(m) => write!(f, "unknown shard {m}"),
            MembershipError::AlreadyDeparted(m) => write!(f, "shard {m} already left the fleet"),
            MembershipError::LastShard => {
                write!(f, "refusing to remove the last live shard")
            }
        }
    }
}

impl std::error::Error for MembershipError {}

/// Per-shard observability counters (snapshot; see
/// [`ShardRouter::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Wire calls attempted against this shard (each may retry
    /// internally per the router's [`RetryPolicy`]).
    pub calls: u64,
    /// Calls that returned a successful [`Reply`].
    pub replies: u64,
    /// Calls that returned a typed [`ServeError`].
    pub typed_errors: u64,
    /// Calls lost to transport failure after reconnect-retry exhaustion.
    pub transport_errors: u64,
    /// In-place stream reconnects performed by this shard's clients.
    pub reconnects: u64,
    /// Warm-up replays served by this shard (never counted in
    /// `replies` — warm traffic is not router traffic).
    pub warmups: u64,
    /// Whether the router currently has the shard marked down
    /// (transient when probing is armed).
    pub down: bool,
    /// Whether the shard has left the fleet (tombstoned slot; final).
    pub departed: bool,
}

#[derive(Debug, Default)]
struct ShardCounters {
    calls: AtomicU64,
    replies: AtomicU64,
    typed_errors: AtomicU64,
    transport_errors: AtomicU64,
    reconnects: AtomicU64,
    warmups: AtomicU64,
}

/// The router's fleet-wide accounting ledger — the multi-shard rollup of
/// [`RuntimeStats`](crate::RuntimeStats): one row per router submission,
/// regardless of how many shards the request visited on the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Requests submitted to the router.
    pub submitted: u64,
    /// Requests that returned a [`Reply`].
    pub completed: u64,
    /// Typed rejections (overload on every live shard, bad request,
    /// shutdown / all shards down).
    pub rejected: u64,
    /// Requests whose per-shard deadline elapsed.
    pub timed_out: u64,
    /// Structured `Faulted` outcomes (isolated panics, engine errors,
    /// unretried protocol errors).
    pub faulted: u64,
    /// Requests that moved to another shard after a transport failure or
    /// shutdown reply (counted once per hop).
    pub failovers: u64,
    /// Requests that spilled to another shard after exhausting retryable
    /// overload on one (the busy shard stays up; counted once per hop).
    pub spills: u64,
    /// Stream reconnects across every shard's clients.
    pub reconnects: u64,
    /// Down marks cleared by health probes (background or
    /// [`ShardRouter::probe_now`]).
    pub recoveries: u64,
    /// Warm-up replay requests served fleet-wide (never ledger rows).
    pub warmups: u64,
    /// Shards currently marked down (departed slots excluded).
    pub shards_down: u64,
}

impl RouterStats {
    /// Requests accounted for by a terminal outcome. The router-level
    /// invariant matches the single-runtime one:
    /// `accounted() == submitted` whenever no submission is in flight —
    /// failover, probing, and membership churn never lose or
    /// double-count a request.
    pub fn accounted(&self) -> u64 {
        self.completed + self.rejected + self.timed_out + self.faulted
    }
}

#[derive(Debug, Default)]
struct RouterCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    faulted: AtomicU64,
    failovers: AtomicU64,
    spills: AtomicU64,
    recoveries: AtomicU64,
    warmups: AtomicU64,
}

/// One shard endpoint: its address, a checkout/checkin pool of wire
/// clients, its transient down flag, its tombstone, and its counters.
#[derive(Debug)]
struct Shard {
    addr: SocketAddr,
    pool: PoisonFreeMutex<Vec<WireClient>>,
    down: AtomicBool,
    departed: AtomicBool,
    /// Held (true) by the one prober currently attempting this shard's
    /// recovery, so a synchronous [`ShardRouter::probe_now`] and the
    /// background prober never double-probe or double-replay it.
    probing: AtomicBool,
    counters: ShardCounters,
}

impl Shard {
    fn fresh(addr: SocketAddr, pool: Vec<WireClient>) -> Arc<Shard> {
        Arc::new(Shard {
            addr,
            pool: PoisonFreeMutex::new(pool),
            down: AtomicBool::new(false),
            departed: AtomicBool::new(false),
            probing: AtomicBool::new(false),
            counters: ShardCounters::default(),
        })
    }

    /// Pops a pooled client, dialing up to `redials` fresh streams when
    /// the pool is momentarily empty (every client checked out, or
    /// dropped after failures). Bounded: a dead shard costs at most
    /// `redials` refused dials per checkout, never an unbounded redial
    /// loop.
    fn checkout(&self, redials: u32) -> Result<WireClient, PoolError> {
        if let Some(client) = self.pool.lock().pop() {
            return Ok(client);
        }
        let attempts = redials.max(1);
        let mut last = String::new();
        for _ in 0..attempts {
            match WireClient::connect(self.addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e.to_string(),
            }
        }
        Err(PoolError::DialExhausted { attempts, last })
    }
}

/// What one shard said about one request — the router's failover
/// decision input.
enum ShardOutcome {
    Reply(Box<Reply>),
    Typed(ServeError),
    Transport(String),
}

/// The membership view every request routes against: the slot list
/// (only ever grows; departed slots are tombstones) and the ring over
/// the live members. Guarded by a read-write lock — requests hold the
/// read side for their whole route walk, so a membership write is a
/// drain barrier against the old ring.
#[derive(Debug)]
struct Fleet {
    shards: Vec<Arc<Shard>>,
    ring: HashRing,
}

/// The shared state behind a [`ShardRouter`] (also referenced by the
/// background prober thread).
#[derive(Debug)]
struct RouterInner {
    fleet: PoisonFreeRwLock<Fleet>,
    config: RouterConfig,
    counters: RouterCounters,
    /// Spec → identity memo, mirroring `SimService`'s: the first request
    /// for a spec generates (or disk-loads) the tensor once to learn its
    /// content hash; every later request routes without touching tensor
    /// bytes.
    ids: PoisonFreeMutex<HashMap<SpecKey, MatrixId>>,
    /// Bounded per-key log of recently served request specs, for warm-up
    /// replay on join/recovery. Entries carry a semantic fingerprint so
    /// repeats of the same spec don't crowd out distinct ones.
    /// Lock order: `fleet` before `warmup`, always.
    warmup: PoisonFreeMutex<Lru<MatrixId, Vec<(u64, Work)>>>,
    stop: AtomicBool,
    probe_mx: PoisonFreeMutex<()>,
    probe_cv: PoisonFreeCondvar,
}

/// A consistent-hash router over N wire shard endpoints. See the
/// [module docs](self) for placement, balance, failover, recovery, and
/// membership semantics.
#[derive(Debug)]
pub struct ShardRouter {
    inner: Arc<RouterInner>,
    prober: Option<JoinHandle<()>>,
}

impl ShardRouter {
    /// Dials every endpoint ([`RouterConfig::connections`] streams each)
    /// and builds the ring. Construction is strict: a shard that cannot
    /// be dialed at all is an error, because a fleet that starts degraded
    /// should fail loudly at deploy time rather than quietly at the first
    /// unlucky request. When [`RouterConfig::probe_interval`] is set, the
    /// background prober starts immediately.
    ///
    /// # Errors
    ///
    /// Connection failures, or an empty endpoint list.
    pub fn connect<A: ToSocketAddrs>(
        endpoints: &[A],
        config: RouterConfig,
    ) -> std::io::Result<ShardRouter> {
        if endpoints.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a shard router needs at least one endpoint",
            ));
        }
        let connections = config.connections.max(1);
        let mut shards = Vec::with_capacity(endpoints.len());
        for endpoint in endpoints {
            let mut pool = Vec::with_capacity(connections);
            for _ in 0..connections {
                pool.push(WireClient::connect(endpoint)?);
            }
            let addr = pool[0].addr();
            shards.push(Shard::fresh(addr, pool));
        }
        let ring = HashRing::new(shards.len(), config.vnodes.max(1));
        let inner = Arc::new(RouterInner {
            fleet: PoisonFreeRwLock::new(Fleet { shards, ring }),
            config,
            counters: RouterCounters::default(),
            ids: PoisonFreeMutex::new(HashMap::new()),
            warmup: PoisonFreeMutex::new(Lru::new(config.warmup_keys.max(1))),
            stop: AtomicBool::new(false),
            probe_mx: PoisonFreeMutex::new(()),
            probe_cv: PoisonFreeCondvar::new(),
        });
        let prober = config.probe_interval.map(|interval| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("tailors-shard-prober".into())
                .spawn(move || prober_loop(&inner, interval))
                .expect("prober thread spawn")
        });
        Ok(ShardRouter { inner, prober })
    }

    /// A snapshot of the ring this router currently places requests
    /// with (the live membership view at call time).
    pub fn ring(&self) -> HashRing {
        self.inner.fleet.read().ring.clone()
    }

    /// Every slot's shard address, in member-id order (departed slots
    /// included — the slot list only grows).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.inner
            .fleet
            .read()
            .shards
            .iter()
            .map(|s| s.addr)
            .collect()
    }

    /// The primary member for `work`'s matrix identity (ignoring down
    /// flags) — where the request goes when its shard is healthy.
    pub fn primary(&self, work: &Work) -> usize {
        let id = self.inner.identify(work);
        self.inner.fleet.read().ring.assign(&id)
    }

    /// Serves one request with failover. The outcome is terminal: a
    /// reply, or the typed error of the last shard consulted
    /// ([`ServeError::Shutdown`] when every shard is down).
    ///
    /// # Errors
    ///
    /// The typed [`ServeError`] for this request. Transport failures are
    /// absorbed into failover; only when no live shard remains do they
    /// surface, as `Shutdown`.
    pub fn submit(&self, work: &Work) -> Result<Reply, ServeError> {
        self.inner.counters.submitted.fetch_add(1, Ordering::SeqCst);
        let outcome = self.inner.route(work);
        match &outcome {
            Ok(_) => &self.inner.counters.completed,
            Err(ServeError::Timeout { .. }) => &self.inner.counters.timed_out,
            Err(ServeError::Faulted { .. }) => &self.inner.counters.faulted,
            Err(_) => &self.inner.counters.rejected,
        }
        .fetch_add(1, Ordering::SeqCst);
        outcome
    }

    /// Serves a whole batch across the fleet: requests group by primary
    /// shard, each group splits over its shard's connection pool in LPT
    /// bins priced by the same cost formula
    /// [`SimService::submit_batch`](crate::SimService::submit_batch)
    /// uses, every (shard, connection) bin runs on its own thread, and
    /// outcomes reassemble in request order — so the reply sequence is
    /// bit-identical to a single process serving the same batch.
    pub fn submit_batch(&self, works: &[Work]) -> Vec<Result<Reply, ServeError>> {
        let primaries: Vec<usize> = works.iter().map(|w| self.primary(w)).collect();
        // Size the group table by the largest member id seen, not a
        // membership snapshot: a concurrent join between the primary
        // resolutions must not make indexing panic.
        let slots = primaries.iter().copied().max().map_or(0, |m| m + 1);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); slots];
        for (i, &p) in primaries.iter().enumerate() {
            groups[p].push(i);
        }
        let mut slots_out: Vec<Option<Result<Reply, ServeError>>> = Vec::new();
        slots_out.resize_with(works.len(), || None);
        let outcomes = PoisonFreeMutex::new(slots_out);
        std::thread::scope(|scope| {
            for group in &groups {
                if group.is_empty() {
                    continue;
                }
                let costs: Vec<u128> = group
                    .iter()
                    .map(|&i| match &works[i] {
                        Work::Sim(r) => request_cost(&r.workload, r.variant),
                        // A functional request executes the dataflow, not
                        // just its analytics — weight it like a cold
                        // overbooked planning pass on top of its size.
                        Work::Functional(r) => request_cost(&r.workload, r.variant) * 4,
                    })
                    .collect();
                let bins = self.inner.config.connections.max(1).min(group.len());
                for bin in balanced_partition(&costs, bins) {
                    let group = group.as_slice();
                    let outcomes = &outcomes;
                    scope.spawn(move || {
                        for local in bin {
                            let i = group[local];
                            let outcome = self.submit(&works[i]);
                            outcomes.lock()[i] = Some(outcome);
                        }
                    });
                }
            }
        });
        let results: Vec<Result<Reply, ServeError>> = outcomes
            .lock()
            .drain(..)
            .map(|slot| slot.expect("every batch index is owned by exactly one bin"))
            .collect();
        results
    }

    /// Adds a new shard to the live fleet: dials its connection pool,
    /// takes the fleet write lock (draining in-flight requests routed on
    /// the old ring), appends the shard at the next member id, rebuilds
    /// the ring over the live members, and — after releasing the lock —
    /// replays the warm-up log entries the new member now owns against
    /// it on the low-priority lane. Returns the new member id.
    ///
    /// Only the new member's keys remap (the [`HashRing`] churn
    /// property); an in-flight request either routed on the old ring
    /// (completing wherever it was placed) or waits for the new one —
    /// it is never dropped or double-accounted, because the ledger rows
    /// are written by `submit` outside the membership lock.
    ///
    /// # Errors
    ///
    /// Dial failures (the fleet is unchanged in that case).
    pub fn join<A: ToSocketAddrs>(&self, endpoint: A) -> std::io::Result<usize> {
        let connections = self.inner.config.connections.max(1);
        let mut pool = Vec::with_capacity(connections);
        for _ in 0..connections {
            pool.push(WireClient::connect(&endpoint)?);
        }
        let addr = pool[0].addr();
        let shard = Shard::fresh(addr, pool);
        let vnodes = self.inner.config.vnodes.max(1);
        let r = self.inner.replica_count();
        let (member, replay) = {
            let mut fleet = self.inner.fleet.write();
            let member = fleet.shards.len();
            fleet.shards.push(Arc::clone(&shard));
            let live: Vec<usize> = live_members(&fleet.shards);
            fleet.ring = HashRing::over(&live, vnodes);
            // Collect the logged keys whose replica set now includes the
            // joiner — exactly the keys that moved to it.
            let log = self.inner.warmup.lock();
            let replay: Vec<Work> = log
                .iter()
                .filter(|(id, _)| fleet.ring.replicas(id, r).contains(&member))
                .flat_map(|(_, specs)| specs.iter().map(|(_, w)| w.clone()))
                .collect();
            (member, replay)
        };
        self.inner.replay_to(&shard, &replay);
        Ok(member)
    }

    /// Retires a live member: takes the fleet write lock (draining
    /// in-flight requests), tombstones the slot, clears its connection
    /// pool, rebuilds the ring over the survivors, and — after releasing
    /// the lock — replays the departed member's logged keys against
    /// their new owners so the handoff is warm. The slot index is never
    /// reused, so every survivor's vnode positions (and every unaffected
    /// key's owner) are untouched.
    ///
    /// # Errors
    ///
    /// [`MembershipError`] when the member is unknown, already departed,
    /// or the last live shard.
    pub fn leave(&self, member: usize) -> Result<(), MembershipError> {
        let vnodes = self.inner.config.vnodes.max(1);
        let r = self.inner.replica_count();
        let replay: Vec<(Arc<Shard>, Vec<Work>)> = {
            let mut fleet = self.inner.fleet.write();
            if member >= fleet.shards.len() {
                return Err(MembershipError::UnknownShard(member));
            }
            if fleet.shards[member].departed.load(Ordering::SeqCst) {
                return Err(MembershipError::AlreadyDeparted(member));
            }
            if live_members(&fleet.shards).len() <= 1 {
                return Err(MembershipError::LastShard);
            }
            // The leaver's logged keys and their *old* owner sets, read
            // against the old ring before the rebuild.
            let log = self.inner.warmup.lock();
            let affected: Vec<(Vec<usize>, Vec<Work>)> = log
                .iter()
                .filter_map(|(id, specs)| {
                    let owners = fleet.ring.replicas(id, r);
                    owners.contains(&member).then(|| {
                        let works: Vec<Work> = specs.iter().map(|(_, w)| w.clone()).collect();
                        (owners, works, *id)
                    })
                })
                .map(|(owners, works, _id)| (owners, works))
                .collect();
            let ids_affected: Vec<MatrixId> = log
                .iter()
                .filter(|(id, _)| fleet.ring.replicas(id, r).contains(&member))
                .map(|(id, _)| *id)
                .collect();
            drop(log);
            fleet.shards[member].departed.store(true, Ordering::SeqCst);
            fleet.shards[member].pool.lock().clear();
            let live: Vec<usize> = live_members(&fleet.shards);
            fleet.ring = HashRing::over(&live, vnodes);
            // Each affected key's new owners that weren't old owners get
            // the key's logged specs replayed.
            let mut per_member: HashMap<usize, Vec<Work>> = HashMap::new();
            for (id, (old_owners, works)) in ids_affected.iter().zip(affected) {
                for new_owner in fleet.ring.replicas(id, r) {
                    if !old_owners.contains(&new_owner) {
                        per_member
                            .entry(new_owner)
                            .or_default()
                            .extend(works.iter().cloned());
                    }
                }
            }
            let mut replay: Vec<(Arc<Shard>, Vec<Work>)> = per_member
                .into_iter()
                .map(|(m, works)| (Arc::clone(&fleet.shards[m]), works))
                .collect();
            // Deterministic replay order (HashMap iteration is not).
            replay.sort_by_key(|(shard, _)| shard.addr);
            replay
        };
        for (shard, works) in &replay {
            self.inner.replay_to(shard, works);
        }
        Ok(())
    }

    /// Probes every down-marked shard once, synchronously: a fresh dial
    /// plus a [`WireClient::ping`]; a pong clears the down mark,
    /// re-admits the shard, and warm-replays the keys it owns. Returns
    /// how many shards recovered. This is the same sweep the background
    /// prober runs on its interval — callable directly for deterministic
    /// tests and tooling.
    pub fn probe_now(&self) -> usize {
        self.inner.probe_once()
    }

    /// Down flags by member slot (departed slots report their last
    /// state; the vector grows as members join).
    pub fn down_shards(&self) -> Vec<bool> {
        self.inner
            .fleet
            .read()
            .shards
            .iter()
            .map(|s| s.down.load(Ordering::SeqCst))
            .collect()
    }

    /// Snapshot of the fleet ledger.
    pub fn stats(&self) -> RouterStats {
        let c = &self.inner.counters;
        let fleet = self.inner.fleet.read();
        RouterStats {
            submitted: c.submitted.load(Ordering::SeqCst),
            completed: c.completed.load(Ordering::SeqCst),
            rejected: c.rejected.load(Ordering::SeqCst),
            timed_out: c.timed_out.load(Ordering::SeqCst),
            faulted: c.faulted.load(Ordering::SeqCst),
            failovers: c.failovers.load(Ordering::SeqCst),
            spills: c.spills.load(Ordering::SeqCst),
            reconnects: fleet
                .shards
                .iter()
                .map(|s| s.counters.reconnects.load(Ordering::SeqCst))
                .sum(),
            recoveries: c.recoveries.load(Ordering::SeqCst),
            warmups: c.warmups.load(Ordering::SeqCst),
            shards_down: fleet
                .shards
                .iter()
                .filter(|s| s.down.load(Ordering::SeqCst) && !s.departed.load(Ordering::SeqCst))
                .count() as u64,
        }
    }

    /// Per-shard counter snapshots, in member-slot order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.inner
            .fleet
            .read()
            .shards
            .iter()
            .map(|s| ShardStats {
                calls: s.counters.calls.load(Ordering::SeqCst),
                replies: s.counters.replies.load(Ordering::SeqCst),
                typed_errors: s.counters.typed_errors.load(Ordering::SeqCst),
                transport_errors: s.counters.transport_errors.load(Ordering::SeqCst),
                reconnects: s.counters.reconnects.load(Ordering::SeqCst),
                warmups: s.counters.warmups.load(Ordering::SeqCst),
                down: s.down.load(Ordering::SeqCst),
                departed: s.departed.load(Ordering::SeqCst),
            })
            .collect()
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.probe_cv.notify_all();
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

/// The member ids of every non-departed slot.
fn live_members(shards: &[Arc<Shard>]) -> Vec<usize> {
    shards
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.departed.load(Ordering::SeqCst))
        .map(|(i, _)| i)
        .collect()
}

fn prober_loop(inner: &RouterInner, interval: Duration) {
    let mut guard = inner.probe_mx.lock();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let (g, _) = inner.probe_cv.wait_timeout(guard, interval);
        guard = g;
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        drop(guard);
        inner.probe_once();
        guard = inner.probe_mx.lock();
    }
}

impl RouterInner {
    fn replica_count(&self) -> usize {
        match self.config.placement {
            Placement::Primary => 1,
            Placement::Replicated(r) => r.max(1),
        }
    }

    /// Walks the failover order for `work`: primary first, then clockwise
    /// ring successors, skipping shards marked down. The fleet read lock
    /// is held for the whole walk — membership writes drain behind it.
    fn route(&self, work: &Work) -> Result<Reply, ServeError> {
        // Identity resolution may generate the tensor; keep it outside
        // the fleet lock.
        let id = self.identify(work);
        let fleet = self.fleet.read();
        let r = self.replica_count();
        let mut last_refusal: Option<ServeError> = None;
        let mut live_tried = 0usize;
        let mut outcome_reply: Option<Reply> = None;
        for member in fleet.ring.candidates(&id) {
            let shard = &fleet.shards[member];
            if shard.down.load(Ordering::SeqCst) {
                continue;
            }
            // Inside the replica set (and with cheaper designated owners
            // still ahead), a dead shard must cost nothing: one attempt,
            // no backoff, no reconnect ladder — the next replica is
            // already warm. The last replica (and every post-replica
            // discovery hop) gets the full retry policy back.
            let fail_fast = live_tried + 1 < r;
            live_tried += 1;
            let policy = if fail_fast {
                RetryPolicy {
                    max_attempts: 1,
                    ..self.config.retry
                }
            } else {
                self.config.retry
            };
            match self.call_shard(member, shard, work, &policy) {
                ShardOutcome::Reply(reply) => {
                    outcome_reply = Some(*reply);
                    break;
                }
                ShardOutcome::Typed(e) if e.retryable() => {
                    // Busy, not gone: spill clockwise without condemning
                    // the shard.
                    self.counters.spills.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(e);
                }
                ShardOutcome::Typed(ServeError::Shutdown) => {
                    shard.down.store(true, Ordering::SeqCst);
                    self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(ServeError::Shutdown);
                }
                // Deterministic outcomes: every shard computes the same
                // answer for the same request, so moving on would only
                // repeat it.
                ShardOutcome::Typed(e) => return Err(e),
                ShardOutcome::Transport(m) => {
                    eprintln!(
                        "router: shard {member} ({}) lost: {m} — failing over",
                        shard.addr
                    );
                    shard.down.store(true, Ordering::SeqCst);
                    self.counters.failovers.fetch_add(1, Ordering::SeqCst);
                    last_refusal = Some(ServeError::Shutdown);
                }
            }
        }
        drop(fleet);
        match outcome_reply {
            Some(reply) => {
                self.record_warm(&id, work);
                Ok(reply)
            }
            None => Err(last_refusal.unwrap_or(ServeError::Shutdown)),
        }
    }

    /// One request against one shard, through a checked-out pool client.
    /// A client that saw a transport or protocol failure is dropped, not
    /// returned — its stream state is unknown and the pool re-dials on
    /// demand (capped; see [`Shard::checkout`]).
    fn call_shard(
        &self,
        member: usize,
        shard: &Shard,
        work: &Work,
        policy: &RetryPolicy,
    ) -> ShardOutcome {
        let _ = member;
        shard.counters.calls.fetch_add(1, Ordering::SeqCst);
        let mut client = match shard.checkout(self.config.redials) {
            Ok(c) => c,
            Err(e) => {
                shard
                    .counters
                    .transport_errors
                    .fetch_add(1, Ordering::SeqCst);
                return ShardOutcome::Transport(e.to_string());
            }
        };
        let before = client.reconnects();
        let result = client.call_with_retry(work, policy);
        shard
            .counters
            .reconnects
            .fetch_add(client.reconnects() - before, Ordering::SeqCst);
        match result {
            Ok(outcome) => {
                shard.pool.lock().push(client);
                match outcome {
                    Ok(reply) => {
                        shard.counters.replies.fetch_add(1, Ordering::SeqCst);
                        ShardOutcome::Reply(Box::new(reply))
                    }
                    Err(e) => {
                        shard.counters.typed_errors.fetch_add(1, Ordering::SeqCst);
                        ShardOutcome::Typed(e)
                    }
                }
            }
            Err(WireError::Io(m)) => {
                shard
                    .counters
                    .transport_errors
                    .fetch_add(1, Ordering::SeqCst);
                ShardOutcome::Transport(m)
            }
            Err(WireError::Malformed(m)) => {
                // A codec disagreement is deterministic — surface it as a
                // fault instead of hammering other shards with it.
                shard.counters.typed_errors.fetch_add(1, Ordering::SeqCst);
                ShardOutcome::Typed(ServeError::Faulted {
                    panic: false,
                    message: format!("wire protocol error: {m}"),
                })
            }
        }
    }

    /// Remembers `work` in the warm-up log under its routing key,
    /// deduplicated by semantic fingerprint and bounded both per key and
    /// across keys.
    fn record_warm(&self, id: &MatrixId, work: &Work) {
        let cap = self.config.warmup_specs_per_key;
        if self.config.warmup_keys == 0 || cap == 0 {
            return;
        }
        let fp = work_fingerprint(work);
        let mut log = self.warmup.lock();
        if let Some(specs) = log.get_mut(id) {
            if specs.iter().any(|(f, _)| *f == fp) {
                return;
            }
            if specs.len() >= cap {
                specs.remove(0);
            }
            specs.push((fp, work.clone()));
        } else {
            log.insert(*id, vec![(fp, work.clone())]);
        }
    }

    /// One probe sweep over every down, non-departed shard: fresh dial +
    /// ping; a pong warm-replays the keys the shard owns, then clears
    /// the down mark — the shard is re-admitted only after its caches
    /// are primed, so returning live traffic never races the replay.
    /// The per-shard `probing` flag elects exactly one prober (a
    /// concurrent [`ShardRouter::probe_now`] and the background prober
    /// can't double-count a recovery or double-replay).
    fn probe_once(&self) -> usize {
        let targets: Vec<(usize, Arc<Shard>)> = {
            let fleet = self.fleet.read();
            fleet
                .shards
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.down.load(Ordering::SeqCst) && !s.departed.load(Ordering::SeqCst)
                })
                .map(|(i, s)| (i, Arc::clone(s)))
                .collect()
        };
        let mut recovered = 0;
        for (member, shard) in targets {
            if shard
                .probing
                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // another prober owns this shard's recovery
            }
            let pong = match WireClient::connect(shard.addr) {
                Ok(mut client) => client.ping().is_ok().then_some(client),
                Err(_) => None,
            };
            if let Some(client) = pong {
                // Another path may have raced `down` back to false only
                // via an earlier probe; re-check under the probing flag.
                if shard.down.load(Ordering::SeqCst) {
                    shard.pool.lock().push(client);
                    let replay: Vec<Work> = {
                        let fleet = self.fleet.read();
                        let r = self.replica_count();
                        let log = self.warmup.lock();
                        log.iter()
                            .filter(|(id, _)| fleet.ring.replicas(id, r).contains(&member))
                            .flat_map(|(_, specs)| specs.iter().map(|(_, w)| w.clone()))
                            .collect()
                    };
                    self.replay_to(&shard, &replay);
                    shard.down.store(false, Ordering::SeqCst);
                    self.counters.recoveries.fetch_add(1, Ordering::SeqCst);
                    recovered += 1;
                }
            }
            shard.probing.store(false, Ordering::SeqCst);
        }
        recovered
    }

    /// Replays `works` against `shard` on the server's low-priority lane
    /// (`"warm":true` envelopes). Best effort: a transport failure
    /// abandons the rest of the replay (the shard will warm organically);
    /// successes bump the `warmups` counters and nothing else — warm
    /// traffic is never a ledger row and never a shard `reply`.
    fn replay_to(&self, shard: &Shard, works: &[Work]) {
        if works.is_empty() || shard.departed.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut client) = shard.checkout(self.config.redials) else {
            return;
        };
        for work in works {
            match client.call_warm(work) {
                Ok(_) => {
                    shard.counters.warmups.fetch_add(1, Ordering::SeqCst);
                    self.counters.warmups.fetch_add(1, Ordering::SeqCst);
                }
                Err(_) => return, // stream state unknown: drop the client
            }
        }
        shard.pool.lock().push(client);
    }

    /// Resolves `work`'s routing identity, generating the tensor only on
    /// first sight of its spec (see the `ids` field).
    fn identify(&self, work: &Work) -> MatrixId {
        let wl = work.workload();
        let spec = SpecKey::of(wl);
        if let Some(id) = self.ids.lock().get(&spec) {
            return *id;
        }
        let tensor = tailors_workloads::generate_cached(wl);
        let id = MatrixId::of(&tensor);
        self.ids.lock().insert(spec, id);
        id
    }
}

/// A semantic fingerprint of a request for warm-log deduplication: two
/// works with equal fingerprints would warm the same cache tiers. A
/// collision only causes a missed (or extra) warm replay — harmless.
fn work_fingerprint(work: &Work) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    let (wl, variant, arch, budget, grid, auto_plan, kind, threads) = match work {
        Work::Sim(r) => (
            &r.workload,
            r.variant,
            &r.arch,
            r.budget,
            r.grid,
            r.auto_plan,
            0u8,
            0usize,
        ),
        Work::Functional(r) => (
            &r.workload,
            r.variant,
            &r.arch,
            r.budget,
            r.grid,
            r.auto_plan,
            1u8,
            r.threads,
        ),
    };
    SpecKey::of(wl).hash(&mut h);
    variant.cache_key().hash(&mut h);
    arch.cache_key().hash(&mut h);
    budget.limit_bytes().hash(&mut h);
    matches!(grid, tailors_sim::GridMode::Grid2D).hash(&mut h);
    auto_plan.hash(&mut h);
    kind.hash(&mut h);
    threads.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<MatrixId> {
        (0..n)
            .map(|i| MatrixId {
                hash: fnv1a(FNV_OFFSET, &i.to_le_bytes()),
                nrows: 64 + (i as usize % 7),
                ncols: 64,
                nnz: 100 + i as usize,
            })
            .collect()
    }

    #[test]
    fn ring_assignment_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(5, 64);
        let b = HashRing::new(5, 64);
        let mut hit = [false; 5];
        for id in ids(500) {
            let s = a.assign(&id);
            assert_eq!(s, b.assign(&id));
            assert!(s < 5);
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "500 keys must touch all 5 shards");
    }

    #[test]
    fn excluding_a_shard_moves_only_its_keys() {
        let ring = HashRing::new(4, 64);
        let mut down = [false; 4];
        down[2] = true;
        for id in ids(400) {
            let primary = ring.assign(&id);
            let fallback = ring.assign_excluding(&id, &down).unwrap();
            if primary != 2 {
                assert_eq!(fallback, primary, "live shards must keep their keys");
            } else {
                assert_ne!(fallback, 2);
            }
        }
    }

    #[test]
    fn candidates_enumerate_every_shard_once_starting_at_primary() {
        let ring = HashRing::new(6, 32);
        for id in ids(50) {
            let order: Vec<usize> = ring.candidates(&id).collect();
            assert_eq!(order[0], ring.assign(&id));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn all_shards_down_yields_no_assignment() {
        let ring = HashRing::new(3, 8);
        let id = ids(1)[0];
        assert_eq!(ring.assign_excluding(&id, &[true, true, true]), None);
    }

    #[test]
    fn member_rings_preserve_survivor_positions() {
        // A ring over {0,1,2,3} and a ring over {0,1,3} (member 2 left)
        // must agree on every key that wasn't member 2's: the churn
        // property elastic membership is built on.
        let full = HashRing::new(4, 64);
        let survivors = HashRing::over(&[0, 1, 3], 64);
        assert_eq!(survivors.shards(), 3);
        assert_eq!(survivors.members(), &[0, 1, 3]);
        assert_eq!(survivors.slots(), 4);
        for id in ids(400) {
            let before = full.assign(&id);
            let after = survivors.assign(&id);
            if before != 2 {
                assert_eq!(after, before, "unaffected keys must not move");
            } else {
                assert_ne!(after, 2);
                // And the destination matches failover on the full ring.
                let down = [false, false, true, false];
                assert_eq!(after, full.assign_excluding(&id, &down).unwrap());
            }
        }
    }

    #[test]
    fn replicas_are_distinct_and_clamp_to_fleet_size() {
        let ring = HashRing::new(5, 32);
        for id in ids(100) {
            let reps = ring.replicas(&id, 3);
            assert_eq!(reps.len(), 3);
            assert_eq!(reps[0], ring.assign(&id));
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct");
            // Degenerate r >= fleet size clamps to every member once.
            let all = ring.replicas(&id, 99);
            assert_eq!(all.len(), 5);
            // r == 0 behaves like primary-only.
            assert_eq!(ring.replicas(&id, 0), vec![ring.assign(&id)]);
        }
    }

    #[test]
    fn checkout_caps_redials_with_a_typed_error() {
        // Grab an ephemeral port that nothing listens on: bind, note the
        // address, drop the listener.
        let dead_addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let shard = Shard::fresh(dead_addr, Vec::new());
        let err = shard.checkout(3).expect_err("dead port cannot dial");
        let PoolError::DialExhausted { attempts, last } = &err;
        assert_eq!(*attempts, 3);
        assert!(!last.is_empty());
        assert!(err.to_string().contains("3 dial attempt(s)"));
        // Zero clamps to one attempt, never an unbounded loop.
        let PoolError::DialExhausted { attempts, .. } = shard.checkout(0).expect_err("still dead");
        assert_eq!(attempts, 1);
    }

    #[test]
    fn work_fingerprints_separate_semantics_not_instances() {
        let a =
            crate::SimRequest::suite("email-Enron", 1.0 / 512.0, tailors_sim::Variant::ExTensorP)
                .expect("suite");
        let b = a.clone();
        assert_eq!(
            work_fingerprint(&Work::Sim(a.clone())),
            work_fingerprint(&Work::Sim(b))
        );
        let other =
            crate::SimRequest::suite("email-Enron", 1.0 / 512.0, tailors_sim::Variant::ExTensorN)
                .expect("suite");
        assert_ne!(
            work_fingerprint(&Work::Sim(a)),
            work_fingerprint(&Work::Sim(other))
        );
    }
}
