//! Fibers: sorted coordinate/value streams, and their intersection.
//!
//! In the terminology the paper adopts from Sze et al., a *fiber* is a
//! one-dimensional slice of a compressed tensor: a stream of
//! `(coordinate, value)` pairs with strictly increasing coordinates.
//! ExTensor's core compute primitive is the *intersection* of two coordinate
//! streams over the shared dimension, which this module implements both as a
//! lazy iterator and with explicit scan-cost accounting (the accelerator
//! model charges cycles for every coordinate scanned, not just for matches).

/// Length ratio beyond which [`Fiber::intersect_counted`] abandons the
/// linear two-finger merge for a galloping search over the longer operand.
/// Below this the merge's branch-predictable linear walk wins; above it the
/// `O(short · log long)` gallop does (the crossover sits near 8–32 on
/// current hardware, so 16 splits the difference).
pub const GALLOP_RATIO: usize = 16;

/// Where the two-finger merge's pointers stop for streams `a` and `b`:
/// the merge exhausts one stream; the other pointer has advanced past
/// every coordinate `<` the exhausted stream's last coordinate, plus one
/// more if that last coordinate matched. Together with the match count
/// this reconstructs the merge's scan cost exactly:
/// `scanned = ai_end + bi_end - matches` (each merge step advances one
/// pointer, or both on a match).
fn merge_endpoints(a: &[u32], b: &[u32]) -> (usize, usize) {
    let (a_last, b_last) = (a[a.len() - 1], b[b.len() - 1]);
    match a_last.cmp(&b_last) {
        core::cmp::Ordering::Equal => (a.len(), b.len()),
        core::cmp::Ordering::Less => {
            let below = b.partition_point(|&c| c < a_last);
            let matched = usize::from(b.get(below) == Some(&a_last));
            (a.len(), below + matched)
        }
        core::cmp::Ordering::Greater => {
            let below = a.partition_point(|&c| c < b_last);
            let matched = usize::from(a.get(below) == Some(&b_last));
            (below + matched, b.len())
        }
    }
}

/// Counts coordinates common to `short` and `long` (both strictly
/// increasing) by galloping: for each short coordinate, exponential search
/// from the previous position brackets the first long coordinate `>=` it,
/// then a binary search inside the bracket lands exactly.
fn gallop_matches(short: &[u32], long: &[u32]) -> usize {
    let mut matches = 0usize;
    let mut pos = 0usize;
    for &c in short {
        if pos >= long.len() {
            break;
        }
        // Exponential probe: find `hi` with long[hi] >= c (or the end).
        let mut step = 1usize;
        let mut lo = pos;
        let mut hi = pos;
        while hi < long.len() && long[hi] < c {
            lo = hi + 1;
            hi += step;
            step *= 2;
        }
        let hi = hi.min(long.len());
        // Binary search in [lo, hi): first index with long[i] >= c.
        pos = lo + long[lo..hi].partition_point(|&x| x < c);
        if long.get(pos) == Some(&c) {
            matches += 1;
            pos += 1;
        }
    }
    matches
}

/// A borrowed fiber: a sorted stream of `(coordinate, value)` pairs.
///
/// # Example
///
/// ```
/// use tailors_tensor::fiber::Fiber;
///
/// let a = Fiber::new(&[1, 3, 5], &[1.0, 2.0, 3.0]);
/// let b = Fiber::new(&[3, 4, 5], &[10.0, 20.0, 30.0]);
/// let matches: Vec<_> = a.intersect(&b).collect();
/// assert_eq!(matches, vec![(3, 2.0, 10.0), (5, 3.0, 30.0)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fiber<'a> {
    coords: &'a [u32],
    vals: &'a [f64],
}

impl<'a> Fiber<'a> {
    /// Creates a fiber from parallel coordinate and value slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths. Coordinates are assumed
    /// strictly increasing (guaranteed when the fiber comes from a
    /// [`crate::CsrMatrix`] row); this is checked only in debug builds.
    pub fn new(coords: &'a [u32], vals: &'a [f64]) -> Self {
        assert_eq!(coords.len(), vals.len(), "coords and vals must be parallel");
        debug_assert!(
            coords.windows(2).all(|w| w[0] < w[1]),
            "fiber coordinates must be strictly increasing"
        );
        Fiber { coords, vals }
    }

    /// The coordinate stream.
    pub fn coords(&self) -> &'a [u32] {
        self.coords
    }

    /// The value stream.
    pub fn values(&self) -> &'a [f64] {
        self.vals
    }

    /// Number of nonzeros in the fiber.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the fiber holds no nonzeros.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Lazily intersects two fibers, yielding `(coord, self_val, other_val)`
    /// for every shared coordinate.
    pub fn intersect<'b>(&self, other: &Fiber<'b>) -> Intersect<'a, 'b> {
        Intersect {
            a: *self,
            b: Fiber {
                coords: other.coords,
                vals: other.vals,
            },
            ai: 0,
            bi: 0,
        }
    }

    /// Intersects two fibers while counting scan work, ExTensor-style.
    ///
    /// Returns `(matches, coords_scanned)`: the matching coordinate count and
    /// the total number of coordinate-stream elements the two-finger scan
    /// advanced past. The accelerator model charges intersection-unit cycles
    /// proportional to `coords_scanned`.
    ///
    /// When one operand is more than [`GALLOP_RATIO`] times longer than the
    /// other, the *implementation* switches to a galloping (exponential +
    /// binary search) walk over the longer stream — `O(short · log long)`
    /// instead of `O(short + long)`. In the balanced regime it uses the
    /// bitmask-blocked walk ([`Fiber::intersect_counted_blocked`]): both
    /// streams are consumed in 64-coordinate blocks whose membership masks
    /// are intersected with one `AND` + popcount, replacing the merge's
    /// per-coordinate unpredictable branch. Either way the *reported*
    /// counts are exactly what the linear two-finger scan would report
    /// (the model charges for the hardware's scan, not the software
    /// shortcut). All paths are public —
    /// [`Fiber::intersect_counted_linear`],
    /// [`Fiber::intersect_counted_blocked`], and
    /// [`Fiber::intersect_counted_galloping`] each always use one
    /// strategy — and the property tests pin them to identical results.
    pub fn intersect_counted(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (short, long) = if self.len() <= other.len() {
            (self.len(), other.len())
        } else {
            (other.len(), self.len())
        };
        if long > short.saturating_mul(GALLOP_RATIO) {
            self.intersect_counted_galloping(other)
        } else {
            self.intersect_counted_blocked(other)
        }
    }

    /// [`Fiber::intersect_counted`] by the scalar two-finger merge,
    /// unconditionally. This is the cost model's definition of `scanned`
    /// and the baseline the `intersect` benchmarks compare the galloping
    /// path against.
    pub fn intersect_counted_linear(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (mut ai, mut bi) = (0usize, 0usize);
        let (mut matches, mut scanned) = (0usize, 0usize);
        while ai < self.coords.len() && bi < other.coords.len() {
            scanned += 1;
            match self.coords[ai].cmp(&other.coords[bi]) {
                core::cmp::Ordering::Equal => {
                    matches += 1;
                    ai += 1;
                    bi += 1;
                }
                core::cmp::Ordering::Less => ai += 1,
                core::cmp::Ordering::Greater => bi += 1,
            }
        }
        (matches, scanned)
    }

    /// [`Fiber::intersect_counted`] by galloping search over the longer
    /// operand, unconditionally. Returns exactly what
    /// [`Fiber::intersect_counted_linear`] returns: `matches` is the true
    /// intersection size, and `scanned` is reconstructed in O(log) time
    /// from where the two-finger merge's pointers would have stopped
    /// (`scanned = ai_end + bi_end − matches`, with the non-exhausted
    /// pointer's final position given by a rank query against the other
    /// stream's last coordinate).
    pub fn intersect_counted_galloping(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (a, b) = (self.coords, other.coords);
        if a.is_empty() || b.is_empty() {
            return (0, 0);
        }
        let matches = if a.len() <= b.len() {
            gallop_matches(a, b)
        } else {
            gallop_matches(b, a)
        };
        let (ai_end, bi_end) = merge_endpoints(a, b);
        (matches, ai_end + bi_end - matches)
    }

    /// [`Fiber::intersect_counted`] by the balanced-regime blocked walk.
    ///
    /// Dispatches once per process (see [`crate::simd::active_level`])
    /// between the SIMD kernels in [`crate::simd`] — AVX-512CD conflict
    /// detection, or the AVX2 rotation-compare merge — and the portable
    /// scalar superblock walk ([`Fiber::intersect_counted_blocked_scalar`]),
    /// which also serves non-x86_64 targets and the `TAILORS_SIMD=off`
    /// override. Dispatch is bit-invisible: every kernel produces the
    /// exact match count, and `scanned` is always reconstructed through
    /// the same [`merge_endpoints`] rank query, so the returned pair
    /// never depends on which kernel ran (the property tests pin all
    /// kernels to [`Fiber::intersect_counted_linear`]).
    pub fn intersect_counted_blocked(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (a, b) = (self.coords, other.coords);
        if a.is_empty() || b.is_empty() {
            return (0, 0);
        }
        match crate::simd::intersect_matches(a, b) {
            None => self.intersect_counted_blocked_scalar(other),
            Some(matches) => {
                let (ai_end, bi_end) = merge_endpoints(a, b);
                (matches, ai_end + bi_end - matches)
            }
        }
    }

    /// The portable scalar blocked walk,
    /// unconditionally: coordinates are grouped into 256-wide superblocks
    /// (`coord >> 8`, four `u64` occupancy words); for each superblock
    /// both streams touch, a `[u64; 4]` membership mask is built per
    /// stream with shift/OR (one branch-predictable pass per stream, the
    /// word picked by two middle coordinate bits) and the match count is
    /// four independent `AND` + popcounts — wide enough for the compiler
    /// to keep the reductions in flight, and a 4× coarser outer loop than
    /// the original one-word walk. Superblocks only one stream touches
    /// are skipped whole.
    ///
    /// Returns exactly what [`Fiber::intersect_counted_linear`] returns:
    /// `matches` is the true intersection size, and `scanned` is
    /// reconstructed from where the two-finger merge's pointers would
    /// have stopped (`scanned = ai_end + bi_end − matches`). This is
    /// the SIMD dispatch's fallback and the fixed baseline the
    /// `blocked_10k_x_10k` bench row measures regardless of what
    /// [`Fiber::intersect_counted_blocked`] dispatches to.
    pub fn intersect_counted_blocked_scalar(&self, other: &Fiber<'_>) -> (usize, usize) {
        let (a, b) = (self.coords, other.coords);
        if a.is_empty() || b.is_empty() {
            return (0, 0);
        }
        let (mut ai, mut bi) = (0usize, 0usize);
        let mut matches = 0usize;
        while ai < a.len() && bi < b.len() {
            let sa = a[ai] >> 8;
            let sb = b[bi] >> 8;
            if sa < sb {
                ai += 1;
                while ai < a.len() && a[ai] >> 8 < sb {
                    ai += 1;
                }
            } else if sb < sa {
                bi += 1;
                while bi < b.len() && b[bi] >> 8 < sa {
                    bi += 1;
                }
            } else {
                let mut mask_a = [0u64; 4];
                while ai < a.len() && a[ai] >> 8 == sa {
                    let c = a[ai];
                    mask_a[((c >> 6) & 3) as usize] |= 1u64 << (c & 63);
                    ai += 1;
                }
                let mut mask_b = [0u64; 4];
                while bi < b.len() && b[bi] >> 8 == sa {
                    let c = b[bi];
                    mask_b[((c >> 6) & 3) as usize] |= 1u64 << (c & 63);
                    bi += 1;
                }
                matches += (mask_a[0] & mask_b[0]).count_ones() as usize
                    + (mask_a[1] & mask_b[1]).count_ones() as usize
                    + (mask_a[2] & mask_b[2]).count_ones() as usize
                    + (mask_a[3] & mask_b[3]).count_ones() as usize;
            }
        }
        let (ai_end, bi_end) = merge_endpoints(a, b);
        (matches, ai_end + bi_end - matches)
    }

    /// Dot product of two fibers (sum over the intersection).
    pub fn dot(&self, other: &Fiber<'_>) -> f64 {
        self.intersect(other).map(|(_, a, b)| a * b).sum()
    }
}

/// Iterator over the intersection of two fibers.
///
/// Produced by [`Fiber::intersect`].
#[derive(Debug, Clone)]
pub struct Intersect<'a, 'b> {
    a: Fiber<'a>,
    b: Fiber<'b>,
    ai: usize,
    bi: usize,
}

impl Iterator for Intersect<'_, '_> {
    type Item = (u32, f64, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.ai < self.a.len() && self.bi < self.b.len() {
            let (ca, cb) = (self.a.coords[self.ai], self.b.coords[self.bi]);
            match ca.cmp(&cb) {
                core::cmp::Ordering::Equal => {
                    let out = (ca, self.a.vals[self.ai], self.b.vals[self.bi]);
                    self.ai += 1;
                    self.bi += 1;
                    return Some(out);
                }
                core::cmp::Ordering::Less => self.ai += 1,
                core::cmp::Ordering::Greater => self.bi += 1,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_finds_shared_coords() {
        let a = Fiber::new(&[0, 2, 4, 6], &[1.0, 2.0, 3.0, 4.0]);
        let b = Fiber::new(&[2, 3, 6], &[5.0, 6.0, 7.0]);
        let out: Vec<_> = a.intersect(&b).collect();
        assert_eq!(out, vec![(2, 2.0, 5.0), (6, 4.0, 7.0)]);
    }

    #[test]
    fn intersect_empty_is_empty() {
        let a = Fiber::new(&[], &[]);
        let b = Fiber::new(&[1], &[1.0]);
        assert_eq!(a.intersect(&b).count(), 0);
        assert_eq!(b.intersect(&a).count(), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn intersect_disjoint_scans_everything() {
        let a = Fiber::new(&[0, 1, 2], &[1.0; 3]);
        let b = Fiber::new(&[10, 11], &[1.0; 2]);
        let (matches, scanned) = a.intersect_counted(&b);
        assert_eq!(matches, 0);
        // The two-finger scan advances through all of `a` before exhausting.
        assert_eq!(scanned, 3);
    }

    #[test]
    fn intersect_counted_matches_iterator() {
        let a = Fiber::new(&[1, 4, 9, 16], &[1.0; 4]);
        let b = Fiber::new(&[2, 4, 8, 16], &[1.0; 4]);
        let (matches, _) = a.intersect_counted(&b);
        assert_eq!(matches, a.intersect(&b).count());
    }

    /// Exhaustive small-case cross-check: both counting strategies agree
    /// with each other (and with the lazy iterator) on every structural
    /// corner — empty operands, disjoint ranges, full overlap, shared
    /// endpoints, extreme length ratios in both argument orders.
    #[test]
    fn galloping_equals_linear_on_corner_cases() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], (0..100).collect()),
            (vec![100], (0..100).collect()),
            (vec![99], (0..100).collect()),
            (vec![0], (0..100).collect()),
            ((0..100).collect(), vec![50]),
            (vec![3, 50, 99], (0..100).collect()),
            (vec![7, 8, 9], (10..200).collect()),
            ((10..200).collect(), vec![7, 8, 9]),
            ((0..50).map(|i| i * 2).collect(), (0..1000).collect()),
            (vec![1, 2, 3], vec![1, 2, 3]),
        ];
        for (ca, cb) in &cases {
            let va = vec![1.0; ca.len()];
            let vb = vec![1.0; cb.len()];
            let a = Fiber::new(ca, &va);
            let b = Fiber::new(cb, &vb);
            let lin = a.intersect_counted_linear(&b);
            let gal = a.intersect_counted_galloping(&b);
            let blk = a.intersect_counted_blocked(&b);
            let scl = a.intersect_counted_blocked_scalar(&b);
            let auto = a.intersect_counted(&b);
            assert_eq!(gal, lin, "a={ca:?} b={cb:?}");
            assert_eq!(blk, lin, "a={ca:?} b={cb:?}");
            assert_eq!(scl, lin, "a={ca:?} b={cb:?}");
            assert_eq!(auto, lin, "a={ca:?} b={cb:?}");
            assert_eq!(lin.0, a.intersect(&b).count(), "a={ca:?} b={cb:?}");
        }
    }

    /// Word-boundary structure the blocked walk is sensitive to: shared
    /// and disjoint bits inside one word, runs crossing word boundaries,
    /// words only one stream touches, and coordinates at bit 0 / bit 63.
    #[test]
    fn blocked_handles_word_boundaries() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![0, 63, 64, 127, 128], vec![63, 64, 128]),
            (vec![0, 1, 2, 3], vec![4, 5, 6, 7]), // same word, disjoint
            (vec![62, 63], vec![64, 65]),         // adjacent words
            ((0..64).collect(), (0..64).collect()), // one full word
            ((0..256).collect(), (64..128).collect()), // word subset
            (vec![5, 200, 4000], vec![200, 4000, 100_000]), // sparse far words
        ];
        for (ca, cb) in &cases {
            let va = vec![1.0; ca.len()];
            let vb = vec![1.0; cb.len()];
            let a = Fiber::new(ca, &va);
            let b = Fiber::new(cb, &vb);
            assert_eq!(
                a.intersect_counted_blocked(&b),
                a.intersect_counted_linear(&b),
                "a={ca:?} b={cb:?}"
            );
            assert_eq!(
                b.intersect_counted_blocked(&a),
                b.intersect_counted_linear(&a),
                "swapped a={ca:?} b={cb:?}"
            );
            assert_eq!(
                a.intersect_counted_blocked_scalar(&b),
                a.intersect_counted_linear(&b),
                "scalar a={ca:?} b={cb:?}"
            );
            assert_eq!(
                b.intersect_counted_blocked_scalar(&a),
                b.intersect_counted_linear(&a),
                "scalar swapped a={ca:?} b={cb:?}"
            );
        }
    }

    #[test]
    fn dispatch_uses_galloping_only_past_the_ratio() {
        // 10 vs 100: ratio 10 < 16, uses the blocked walk; 10 vs 1000:
        // gallops. All strategies must report the same counts, so this
        // only pins the public contract that results never depend on the
        // strategy.
        let short: Vec<u32> = (0..10).map(|i| i * 7).collect();
        let long: Vec<u32> = (0..1000).collect();
        let vs = vec![1.0; short.len()];
        let vl = vec![1.0; long.len()];
        let s = Fiber::new(&short, &vs);
        let l = Fiber::new(&long, &vl);
        assert_eq!(s.intersect_counted(&l), s.intersect_counted_linear(&l));
        assert_eq!(l.intersect_counted(&s), l.intersect_counted_linear(&s));
    }

    #[test]
    fn dot_product() {
        let a = Fiber::new(&[1, 3], &[2.0, 3.0]);
        let b = Fiber::new(&[3, 5], &[4.0, 5.0]);
        assert_eq!(a.dot(&b), 12.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_panic() {
        let _ = Fiber::new(&[1, 2], &[1.0]);
    }
}
