//! Coordinate-space tiling (CST) of sparse matrices.
//!
//! The paper constructs uniform-*shape* tiles in coordinate space (§2.2).
//! Following its tile-construction rule (§5.2) — expand along the shared
//! dimension `K` to its end first, then along the panel dimension — the
//! tiles used by the accelerator model are **row panels**: `rows_per_tile`
//! consecutive rows spanning all columns. [`RowPanels`] enumerates them with
//! O(1) occupancy lookups. [`grid_tile_occupancies`] additionally supports
//! general 2-D tiles for Fig. 1-style occupancy studies.

use std::collections::HashMap;

use crate::{CsrMatrix, MatrixProfile};

/// A single coordinate-space tile (a row panel) and its occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// First row of the panel (inclusive).
    pub row_start: usize,
    /// One past the last row of the panel.
    pub row_end: usize,
    /// Coordinate-space size of the tile: `(row_end - row_start) × ncols`,
    /// counting zeros and nonzeros (the paper's "size").
    pub size: u64,
    /// Number of nonzeros in the tile (the paper's "occupancy").
    pub occupancy: u64,
}

impl Tile {
    /// Buffer utilization if this tile is placed in a buffer of `capacity`
    /// nonzero slots: `min(occupancy, capacity) / capacity`.
    pub fn utilization(&self, capacity: u64) -> f64 {
        if capacity == 0 {
            return 0.0;
        }
        self.occupancy.min(capacity) as f64 / capacity as f64
    }

    /// Whether the tile overbooks a buffer of `capacity` nonzero slots.
    pub fn overbooks(&self, capacity: u64) -> bool {
        self.occupancy > capacity
    }
}

/// Uniform-shape row-panel tiling of a matrix profile.
///
/// # Example
///
/// ```
/// use tailors_tensor::{MatrixProfile, tiling::RowPanels};
///
/// let p = MatrixProfile::new(4, 8, vec![1, 5, 0, 2], vec![1; 8]);
/// let panels = RowPanels::new(&p, 2);
/// assert_eq!(panels.n_tiles(), 2);
/// assert_eq!(panels.occupancy(0), 6);
/// assert_eq!(panels.occupancy(1), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RowPanels<'a> {
    profile: &'a MatrixProfile,
    rows_per_tile: usize,
}

impl<'a> RowPanels<'a> {
    /// Creates a row-panel tiling with `rows_per_tile` rows per tile. The
    /// final tile may be ragged (fewer rows).
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_tile == 0`.
    pub fn new(profile: &'a MatrixProfile, rows_per_tile: usize) -> Self {
        assert!(rows_per_tile > 0, "rows_per_tile must be positive");
        RowPanels {
            profile,
            rows_per_tile,
        }
    }

    /// The tiled profile.
    pub fn profile(&self) -> &'a MatrixProfile {
        self.profile
    }

    /// Rows per tile.
    pub fn rows_per_tile(&self) -> usize {
        self.rows_per_tile
    }

    /// Number of tiles (`ceil(nrows / rows_per_tile)`).
    pub fn n_tiles(&self) -> usize {
        self.profile.nrows().div_ceil(self.rows_per_tile)
    }

    /// Coordinate-space size of a full (non-ragged) tile.
    pub fn tile_size(&self) -> u64 {
        self.rows_per_tile as u64 * self.profile.ncols() as u64
    }

    /// Row range of tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_tiles()`.
    pub fn rows(&self, i: usize) -> (usize, usize) {
        assert!(i < self.n_tiles(), "tile index out of bounds");
        let lo = i * self.rows_per_tile;
        let hi = (lo + self.rows_per_tile).min(self.profile.nrows());
        (lo, hi)
    }

    /// Occupancy (nonzero count) of tile `i`. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_tiles()`.
    pub fn occupancy(&self, i: usize) -> u64 {
        let (lo, hi) = self.rows(i);
        self.profile.row_range_nnz(lo, hi)
    }

    /// The full [`Tile`] description of tile `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_tiles()`.
    pub fn tile(&self, i: usize) -> Tile {
        let (lo, hi) = self.rows(i);
        Tile {
            row_start: lo,
            row_end: hi,
            size: (hi - lo) as u64 * self.profile.ncols() as u64,
            occupancy: self.profile.row_range_nnz(lo, hi),
        }
    }

    /// Iterates over all tiles.
    pub fn iter(&self) -> impl Iterator<Item = Tile> + '_ {
        (0..self.n_tiles()).map(move |i| self.tile(i))
    }

    /// Iterates over tile occupancies only — a tight prefix-sum walk
    /// ([`MatrixProfile::panel_occupancies`]), with no per-tile index
    /// arithmetic, so near-per-row tilings over million-row tensors stay
    /// cheap in the analytical model's hot loops.
    pub fn occupancies(&self) -> impl Iterator<Item = u64> + '_ {
        self.profile.panel_occupancies(self.rows_per_tile)
    }

    /// Maximum tile occupancy. Returns 0 for an empty tiling.
    pub fn max_occupancy(&self) -> u64 {
        self.occupancies().max().unwrap_or(0)
    }

    /// Whether every tile's occupancy fits a buffer of `capacity` nonzero
    /// slots. Short-circuits at the first overflowing tile, unlike
    /// `max_occupancy() <= capacity` which always walks the whole tiling —
    /// the difference dominates prescient candidate search, where most
    /// candidates fail early.
    pub fn fits_within(&self, capacity: u64) -> bool {
        if self.rows_per_tile == 1 {
            // Single-row panels: the max occupancy is cached on the
            // profile, so the floor of every prescient search is O(1).
            return self.profile.max_row_nnz() as u64 <= capacity;
        }
        self.occupancies().all(|occ| occ <= capacity)
    }

    /// Fraction of tiles whose occupancy exceeds `capacity` — the paper's
    /// *overbooking rate* for this tiling against a buffer of that capacity.
    pub fn overbooking_rate(&self, capacity: u64) -> f64 {
        let n = self.n_tiles();
        if n == 0 {
            return 0.0;
        }
        let over = self.occupancies().filter(|&o| o > capacity).count();
        over as f64 / n as f64
    }

    /// Average buffer utilization across tiles for a buffer of `capacity`
    /// nonzero slots (overbooked tiles count as 100 % full).
    pub fn mean_utilization(&self, capacity: u64) -> f64 {
        self.capacity_summary(capacity).mean_utilization
    }

    /// [`RowPanels::mean_utilization`], [`RowPanels::overbooking_rate`],
    /// and [`RowPanels::max_occupancy`] in one fused pass over the
    /// occupancies — the strategy planners need all of them per candidate
    /// tiling, and three separate walks over a near-per-row tiling of a
    /// million-row tensor is pure waste.
    pub fn capacity_summary(&self, capacity: u64) -> CapacitySummary {
        let n = self.n_tiles();
        if n == 0 {
            return CapacitySummary::default();
        }
        let mut clamped_sum = 0u64;
        let mut overbooked = 0usize;
        let mut max = 0u64;
        if self.rows_per_tile == 1 {
            // Single-row panels are the per-row counts themselves; walk
            // the flat `u32` slice instead of the prefix-difference chain.
            for &occ in self.profile.row_nnz() {
                let occ = occ as u64;
                clamped_sum += occ.min(capacity);
                overbooked += usize::from(occ > capacity);
                max = max.max(occ);
            }
        } else {
            for occ in self.occupancies() {
                clamped_sum += occ.min(capacity);
                overbooked += usize::from(occ > capacity);
                max = max.max(occ);
            }
        }
        CapacitySummary {
            mean_utilization: if capacity == 0 {
                0.0
            } else {
                clamped_sum as f64 / capacity as f64 / n as f64
            },
            overbooking_rate: overbooked as f64 / n as f64,
            max_occupancy: max,
        }
    }
}

/// Fused per-tiling capacity statistics (see
/// [`RowPanels::capacity_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CapacitySummary {
    /// Mean buffer utilization across tiles (overbooked tiles count as
    /// 100 % full); 0.0 for a zero-capacity buffer.
    pub mean_utilization: f64,
    /// Fraction of tiles whose occupancy exceeds the capacity.
    pub overbooking_rate: f64,
    /// Largest tile occupancy.
    pub max_occupancy: u64,
}

/// Computes the occupancy of every 2-D coordinate-space tile of
/// `tile_rows × tile_cols`, including empty tiles.
///
/// This is the general CST tiling used in Fig. 1, where tiles do not span
/// the full shared dimension. Requires nonzero positions, so it takes the
/// concrete [`CsrMatrix`]. The result has
/// `ceil(nrows/tile_rows) × ceil(ncols/tile_cols)` entries in row-major
/// block order.
///
/// # Panics
///
/// Panics if either tile dimension is zero.
pub fn grid_tile_occupancies(m: &CsrMatrix, tile_rows: usize, tile_cols: usize) -> Vec<u64> {
    assert!(tile_rows > 0 && tile_cols > 0, "tile dims must be positive");
    let br = m.nrows().div_ceil(tile_rows);
    let bc = m.ncols().div_ceil(tile_cols);
    let n_blocks = br.checked_mul(bc).expect("block-grid size overflows usize");
    // Sparse accumulation: most blocks of a very sparse tensor are empty.
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for (r, c, _) in m.iter() {
        let block = (r / tile_rows) * bc + c / tile_cols;
        *counts.entry(block).or_insert(0) += 1;
    }
    let mut out = vec![0u64; n_blocks];
    for (block, n) in counts {
        out[block] = n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn profile() -> MatrixProfile {
        MatrixProfile::new(5, 4, vec![3, 0, 2, 4, 1], vec![3, 3, 2, 2])
    }

    #[test]
    fn panel_count_and_ragged_tail() {
        let p = profile();
        let panels = RowPanels::new(&p, 2);
        assert_eq!(panels.n_tiles(), 3);
        assert_eq!(panels.rows(2), (4, 5));
        assert_eq!(panels.tile(2).size, 4); // 1 ragged row × 4 cols
        assert_eq!(panels.tile_size(), 8);
    }

    #[test]
    fn occupancies_partition_nnz() {
        let p = profile();
        for rpt in 1..=5 {
            let panels = RowPanels::new(&p, rpt);
            assert_eq!(panels.occupancies().sum::<u64>(), p.nnz());
        }
    }

    #[test]
    fn max_occupancy_and_overbooking_rate() {
        let p = profile();
        let panels = RowPanels::new(&p, 2);
        // occupancies: [3, 6, 1]
        assert_eq!(panels.max_occupancy(), 6);
        assert!((panels.overbooking_rate(5) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(panels.overbooking_rate(6), 0.0);
        assert_eq!(panels.overbooking_rate(0), 1.0);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let t = Tile {
            row_start: 0,
            row_end: 1,
            size: 10,
            occupancy: 12,
        };
        assert_eq!(t.utilization(10), 1.0);
        assert!(t.overbooks(10));
        assert!(!t.overbooks(12));
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn mean_utilization_averages_over_tiles() {
        let p = profile();
        let panels = RowPanels::new(&p, 2);
        // occ [3,6,1] with cap 6 -> (0.5 + 1.0 + 1/6) / 3
        let expected = (0.5 + 1.0 + 1.0 / 6.0) / 3.0;
        assert!((panels.mean_utilization(6) - expected).abs() < 1e-12);
    }

    #[test]
    fn capacity_summary_matches_separate_passes() {
        let p = profile();
        for rpt in [1, 2, 3, 5] {
            let panels = RowPanels::new(&p, rpt);
            for cap in [0u64, 1, 3, 5, 6, 100] {
                let s = panels.capacity_summary(cap);
                assert!(
                    (s.mean_utilization
                        - if cap == 0 {
                            0.0
                        } else {
                            panels.iter().map(|t| t.utilization(cap)).sum::<f64>()
                                / panels.n_tiles() as f64
                        })
                    .abs()
                        < 1e-12,
                    "rpt={rpt} cap={cap}"
                );
                assert!(
                    (s.overbooking_rate - panels.overbooking_rate(cap)).abs() < 1e-12,
                    "rpt={rpt} cap={cap}"
                );
                assert_eq!(s.max_occupancy, panels.max_occupancy());
                assert_eq!(panels.fits_within(cap), s.max_occupancy <= cap);
            }
        }
        assert_eq!(
            RowPanels::new(&profile(), 2)
                .capacity_summary(0)
                .mean_utilization,
            0.0
        );
    }

    #[test]
    fn grid_occupancies_cover_all_nnz() {
        let m = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 3, 1.0),
                (1, 1, 1.0),
                (3, 3, 1.0),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let occ = grid_tile_occupancies(&m, 2, 2);
        assert_eq!(occ.len(), 4);
        assert_eq!(occ.iter().sum::<u64>(), 5);
        // Block layout: [(0,0)=2 in top-left? entries (0,0),(1,1) -> block 0;
        // (0,3) -> block 1; (2,2),(3,3) -> block 3]
        assert_eq!(occ, vec![2, 1, 0, 2]);
    }

    #[test]
    fn grid_includes_empty_tiles() {
        let m = CsrMatrix::from_triplets(6, 6, &[(0, 0, 1.0)]).unwrap();
        let occ = grid_tile_occupancies(&m, 2, 2);
        assert_eq!(occ.len(), 9);
        assert_eq!(occ.iter().filter(|&&o| o == 0).count(), 8);
    }
}
