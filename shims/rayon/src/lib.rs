//! Offline, API-compatible shim for the subset of `rayon` this workspace
//! uses: `into_par_iter().map(..).collect()`, `par_iter()`, `join`, and
//! `ThreadPoolBuilder::num_threads(..).build().install(..)`.
//!
//! Execution model: eager fork-join on `std::thread::scope`. Work is split
//! into one contiguous chunk per thread, each chunk is mapped on its own OS
//! thread, and results are concatenated in input order — so `collect()`
//! ordering (and therefore every floating-point accumulation order built on
//! it) is identical to the serial path, whatever the thread count.
//!
//! Thread count resolution order: an active [`ThreadPool::install`] scope,
//! then the `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`. Worker threads run nested
//! parallel calls serially (no work stealing), which bounds thread fan-out
//! at one level.

#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; workers run
    /// with an override of 1 so nested parallelism stays bounded.
    static NUM_THREADS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel iterators will currently fan out to.
pub fn current_num_threads() -> usize {
    if let Some(n) = NUM_THREADS_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = NUM_THREADS_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let result = f();
    NUM_THREADS_OVERRIDE.with(|c| c.set(prev));
    result
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| with_num_threads(1, b));
        let ra = a();
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Error building a thread pool (the shim never fails; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the pool's thread count (`0` means "automatic", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => {
                // "Automatic": resolve now so install() pins a stable count.
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: parallel calls inside [`ThreadPool::install`] fan
/// out to its thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count active.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_num_threads(self.num_threads, f)
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Maps `f` over `items` on up to [`current_num_threads`] threads,
/// preserving input order in the output.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_threads = current_num_threads().min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(n_threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(n_threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let f = &f;
    let mut out: Vec<R> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    with_num_threads(1, || chunk.into_iter().map(f).collect::<Vec<R>>())
                })
            })
            .collect();
        for h in handles {
            let part = h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            out.extend(part);
        }
    });
    out
}

pub mod iter {
    //! Parallel iterator types.

    use super::parallel_map;

    /// Conversion into a parallel iterator over owned items.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Starts the parallel pipeline.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for core::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// Conversion into a parallel iterator over borrowed items.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send + 'a;
        /// Starts the parallel pipeline over references.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    /// A materialized parallel iterator (the shim is eager, so this simply
    /// owns the items).
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps each element through `f`.
        pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
                _r: core::marker::PhantomData,
            }
        }

        /// Collects the items without mapping.
        pub fn collect<C: From<Vec<T>>>(self) -> C {
            C::from(self.items)
        }
    }

    /// A mapped parallel pipeline; work happens in [`ParMap::collect`] or
    /// [`ParMap::for_each`].
    pub struct ParMap<T: Send, R: Send, F: Fn(T) -> R + Sync> {
        items: Vec<T>,
        f: F,
        _r: core::marker::PhantomData<fn() -> R>,
    }

    impl<T, R, F> ParMap<T, R, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Runs the pipeline across threads and collects in input order.
        pub fn collect<C>(self) -> C
        where
            C: From<Vec<R>>,
        {
            C::from(parallel_map(self.items, self.f))
        }

        /// Runs the pipeline for its side effects.
        pub fn for_each(self) {
            let _ = parallel_map(self.items, self.f);
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.

    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn vec_and_slice_sources() {
        let data = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = data.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let sums: Vec<u64> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sums, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let v: Vec<usize> = (0..10).into_par_iter().map(|i| i).collect();
            assert_eq!(v, (0..10).collect::<Vec<_>>());
        });
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        single.install(|| assert_eq!(current_num_threads(), 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |n| {
            let pool = ThreadPoolBuilder::new().num_threads(n).build().unwrap();
            pool.install(|| {
                (0..500)
                    .into_par_iter()
                    .map(|i| (i as f64).sqrt())
                    .collect::<Vec<f64>>()
            })
        };
        let serial = run(1);
        for n in [2, 4, 7] {
            assert_eq!(serial, run(n));
        }
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let _: Vec<usize> = (0..100)
                .into_par_iter()
                .map(|i| {
                    if i == 63 {
                        panic!("worker boom");
                    }
                    i
                })
                .collect();
        });
    }
}
