//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **FIFO-region sizing** (§3.3.1): the paper sizes the streaming region
//!    statically to hide the parent round trip; too small starves the
//!    child, too large sacrifices resident reuse. We sweep the region
//!    fraction and report the retained-reuse side of that trade-off on a
//!    real overbooked traversal.
//! 2. **Overbooking without Tailors** (Fig. 3a): the same oversized tiling
//!    backed by plain buffets, which refetch whole tiles per traversal —
//!    demonstrating that the Tailors mechanism, not the larger tiles
//!    alone, is what makes overbooking profitable.
//!
//! Usage: `cargo run --release -p tailors-bench --bin ablation [scale]`

use tailors_bench::{arch_at, profile_at, rule, scale_from_args};
use tailors_eddo::replay::replay_tailor;
use tailors_eddo::TailorConfig;
use tailors_sim::{simulate, Variant};

fn main() {
    let scale = scale_from_args();

    // --- Ablation 1: FIFO-region size vs retained reuse. -----------------
    println!("Ablation 1 — FIFO-region size vs retained reuse (overbooked tile)");
    rule(64);
    let capacity = 4_096usize;
    let tile: Vec<u32> = (0..(capacity as u32 * 2)).collect(); // 2x overbooked
    let passes = 8;
    println!(
        "{:>12} {:>10} {:>14} {:>10}",
        "fifo region", "resident", "parent fetches", "reuse"
    );
    for frac in [1, 2, 5, 10, 25, 50, 75, 90] {
        let region = (capacity * frac / 100).clamp(1, capacity - 1);
        let config = TailorConfig::new(capacity, region).expect("valid config");
        let report = replay_tailor(&tile, config, passes).expect("replay");
        println!(
            "{:>11}% {:>10} {:>14} {:>9.1}%",
            frac,
            config.resident_region(),
            report.parent_fetches,
            100.0 * report.reuse_fraction()
        );
    }
    println!("larger streaming regions trade resident reuse for latency hiding");
    println!("(the latency-hiding benefit is a pipeline effect the per-element");
    println!("traffic model cannot show; the paper sizes for the round trip).");

    // --- Ablation 2: overbooked tiling with vs without Tailors. ----------
    println!();
    println!("Ablation 2 — overbooked tiling with Tailors vs plain buffets (scale = {scale})");
    rule(72);
    let arch = arch_at(scale);
    println!(
        "{:<20} {:>12} {:>14} {:>14}",
        "workload", "OB/P (tailors)", "OB/P (buffets)", "tailors gain"
    );
    rule(72);
    for name in ["amazon0312", "webbase-1M", "roadNet-CA", "rma10"] {
        let wl = tailors_workloads::by_name(name).expect("suite tensor");
        let (_, profile) = profile_at(&wl, scale);
        let p = Variant::ExTensorP.run(&profile, &arch);
        let ob_plan = Variant::default_ob().plan(&profile, &arch);
        let with_tailors = simulate(&profile, &arch, ob_plan);
        let mut buffet_plan = ob_plan;
        buffet_plan.overbooking = false; // same tiles, no streaming support
        let without = simulate(&profile, &arch, buffet_plan);
        println!(
            "{:<20} {:>13.2}x {:>13.2}x {:>13.2}x",
            name,
            with_tailors.speedup_over(&p),
            without.speedup_over(&p),
            without.cycles / with_tailors.cycles
        );
    }
    rule(72);
    println!("without Tailors, every traversal of an overbooked tile refetches the");
    println!("whole tile (Fig. 3a): speculative tiling alone is not enough.");
}
