//! Golden-metrics regression suite: for a fixed seed set covering every
//! `Variant` × {no budget, tight budget} × `GridMode::{Panels, Grid2D}`
//! (plus auto-planned rows at the tight budget, appended after the fixed
//! ones so non-auto lines never move),
//! the full `RunMetrics` payload (cycle/energy roofline, DRAM totals and
//! breakdowns, activity counts, reuse statistics, tile plan, scratch
//! stats) is snapshotted into the checked-in golden file
//! `tests/golden/metrics.txt`. A future kernel or planner refactor that
//! shifts *any* accounting — even one element of DRAM traffic — fails
//! here with a line-level diff instead of slipping through.
//!
//! To intentionally re-baseline after a deliberate accounting change:
//! `TAILORS_UPDATE_GOLDEN=1 cargo test -p tailors-serve --test
//! golden_metrics` rewrites the file; commit the diff with the change
//! that caused it.
//!
//! The suite also runs every combination through a batched, multi-thread
//! [`SimService`] submission twice (cold then plan-hot) and holds the
//! served responses to the same golden lines — the "golden suite passes
//! under `--serve`" guarantee.

use std::fmt::Write as _;
use std::path::PathBuf;

use tailors_serve::{SimRequest, SimService};
use tailors_sim::{ArchConfig, GridMode, MemBudget, RunMetrics, Variant};
use tailors_workloads::Workload;

/// Fixed evaluation points: two structurally different suite workloads
/// (banded linear system, heavy-tailed graph) at 1/256 scale, with the
/// architecture scaled alongside as the bench suite does.
const SCALE: f64 = 1.0 / 256.0;
const WORKLOADS: [&str; 2] = ["cant", "email-Enron"];

/// The tight budget: small enough to split every workload's panels into
/// multiple column blocks at this scale, so the snapshot pins the
/// budgeted planner too.
const TIGHT: MemBudget = MemBudget::bytes(64 << 10);

fn variants() -> [Variant; 3] {
    [
        Variant::ExTensorN,
        Variant::ExTensorP,
        Variant::default_ob(),
    ]
}

fn combos() -> Vec<(Workload, Variant, MemBudget, GridMode, bool)> {
    let mut out = Vec::new();
    for name in WORKLOADS {
        let wl = tailors_workloads::by_name(name)
            .expect("fixed workload exists")
            .scaled(SCALE);
        for variant in variants() {
            for budget in [MemBudget::Unbounded, TIGHT] {
                for grid in [GridMode::Panels, GridMode::Grid2D] {
                    out.push((wl.clone(), variant, budget, grid, false));
                }
            }
        }
    }
    // Auto-planned rows ride at the tight budget only (an unbounded
    // budget leaves nothing to co-optimize against), appended *after*
    // every fixed row so the pre-existing golden lines stay untouched.
    for name in WORKLOADS {
        let wl = tailors_workloads::by_name(name)
            .expect("fixed workload exists")
            .scaled(SCALE);
        for variant in variants() {
            for grid in [GridMode::Panels, GridMode::Grid2D] {
                out.push((wl.clone(), variant, TIGHT, grid, true));
            }
        }
    }
    out
}

/// Renders one run's full metrics as a stable, diffable line. Floats use
/// Rust's shortest-round-trip `Debug` form, so the text captures the
/// exact bit pattern.
fn render(
    wl: &Workload,
    variant: Variant,
    budget: MemBudget,
    grid: GridMode,
    auto_plan: bool,
    m: &RunMetrics,
) -> String {
    let mut s = String::new();
    let a = &m.activity;
    // Auto-planned rows carry a marker after the grid so fixed lines
    // render byte-identically to the pre-auto golden file.
    let auto = if auto_plan { " auto-plan" } else { "" };
    let _ = write!(
        s,
        "{}@1/256 {} budget={budget} grid={grid}{auto} | cycles={:?} energy_pj={:?} bound={} | \
         dram={}/{}+{} gb={} pe={} macs={} isect={} | \
         bumped={:?} reused={:?} obA={}/{} obB={}/{} | \
         tile={}x{}/{}x{} full_k={} ob={} | \
         blocks={}x{}cols bytes={} fits={} units={}",
        wl.name,
        variant.name(),
        m.cycles,
        m.energy_pj,
        m.bound_by,
        m.dram.total,
        m.dram.baseline,
        m.dram.overbook_extra,
        a.gb_accesses,
        a.pe_buf_accesses,
        a.macs,
        a.isect_coords,
        m.reuse.bumped_fraction,
        m.reuse.reused_fraction,
        m.reuse.overbooked_a_tiles,
        m.reuse.total_a_tiles,
        m.reuse.overbooked_b_tiles,
        m.reuse.total_b_tiles,
        m.plan.gb_rows_a,
        m.plan.gb_cols_b,
        m.plan.pe_rows_a,
        m.plan.pe_cols_b,
        m.plan.full_k,
        m.plan.overbooking,
        m.scratch.col_blocks,
        m.scratch.block_cols,
        m.scratch.bytes_per_thread,
        m.scratch.fits_budget,
        m.scratch.parallel_units,
    );
    debug_assert_eq!(m.dram.total, a.dram_elems, "breakdown totals agree");
    s
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("metrics.txt")
}

/// Asserts `actual` equals the checked-in golden file, printing a
/// line-level diff on mismatch (or rewriting the file under
/// `TAILORS_UPDATE_GOLDEN=1`).
fn assert_matches_golden(actual: &str, context: &str) {
    let path = golden_path();
    if std::env::var("TAILORS_UPDATE_GOLDEN").is_ok_and(|v| !v.trim().is_empty() && v != "0") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, actual).expect("write golden file");
        eprintln!("golden file updated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with TAILORS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut diff = String::new();
    let (exp, act): (Vec<_>, Vec<_>) = (expected.lines().collect(), actual.lines().collect());
    for i in 0..exp.len().max(act.len()) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                let _ = writeln!(diff, "line {}:", i + 1);
                let _ = writeln!(diff, "  - expected: {}", e.unwrap_or(&"<missing>"));
                let _ = writeln!(diff, "  + actual:   {}", a.unwrap_or(&"<missing>"));
            }
        }
    }
    panic!(
        "{context}: metrics diverged from the golden snapshot {}.\n{diff}\
         If this accounting change is deliberate, re-baseline with \
         TAILORS_UPDATE_GOLDEN=1 and commit the golden diff alongside it.",
        path.display()
    );
}

#[test]
fn golden_metrics_direct() {
    let arch = ArchConfig::extensor().scaled(SCALE);
    let mut actual = String::new();
    for (wl, variant, budget, grid, auto_plan) in combos() {
        let profile = tailors_workloads::generate_cached(&wl).profile();
        let m = if auto_plan {
            variant.run_auto(&profile, &arch, budget, grid)
        } else {
            variant.run_gridded(&profile, &arch, budget, grid)
        };
        actual.push_str(&render(&wl, variant, budget, grid, auto_plan, &m));
        actual.push('\n');
    }
    assert_matches_golden(&actual, "direct Variant runs");
}

#[test]
fn golden_metrics_under_serve() {
    let arch = ArchConfig::extensor().scaled(SCALE);
    let service = SimService::new();
    let reqs: Vec<SimRequest> = combos()
        .into_iter()
        .map(|(workload, variant, budget, grid, auto_plan)| SimRequest {
            workload,
            variant,
            arch,
            budget,
            grid,
            auto_plan,
        })
        .collect();
    // Cold batch warms the tiers; the hot batch is the one snapshotted —
    // the golden file must hold for cache-served responses too.
    let cold = service.submit_batch(&reqs, 4);
    let hot = service.submit_batch(&reqs, 4);
    let mut actual = String::new();
    for (req, (c, h)) in reqs.iter().zip(cold.iter().zip(&hot)) {
        assert_eq!(c.metrics, h.metrics, "{}: hot != cold", req.workload.name);
        assert!(
            h.hits.plan,
            "{}: second batch must be plan-hot",
            req.workload.name
        );
        actual.push_str(&render(
            &req.workload,
            req.variant,
            req.budget,
            req.grid,
            req.auto_plan,
            &h.metrics,
        ));
        actual.push('\n');
    }
    assert_matches_golden(&actual, "served (plan-hot) responses");
}
