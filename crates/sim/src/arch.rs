//! Architecture configuration for the modeled ExTensor-class accelerator.

/// Configuration of the modeled accelerator (paper §5.2: ExTensor at 1 GHz,
/// 30 MB global buffer, 128 PEs, 68.25 GB/s aggregate DRAM bandwidth).
///
/// Capacities are expressed in *element slots*: one slot holds one nonzero's
/// value plus its coordinate metadata (see
/// [`ArchConfig::bytes_per_element`]).
///
/// # Example
///
/// ```
/// use tailors_sim::ArchConfig;
///
/// let arch = ArchConfig::extensor();
/// assert_eq!(arch.pe_count, 128);
/// assert!(arch.gb_capacity_elems() > 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// Global buffer capacity in bytes (paper: 30 MB).
    pub gb_bytes: u64,
    /// Per-PE buffer capacity in bytes (64 KB, in line with ExTensor's
    /// PE-local storage).
    pub pe_buf_bytes: u64,
    /// Number of processing elements (paper: 128).
    pub pe_count: u64,
    /// Bytes per stored element: value plus compressed coordinate metadata.
    pub bytes_per_element: u64,
    /// DRAM bandwidth in bytes per cycle (68.25 GB/s at 1 GHz ≈ 68.25
    /// B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Global-buffer read bandwidth in elements per cycle (aggregate across
    /// banks).
    pub gb_elems_per_cycle: f64,
    /// Aggregate intersection-unit throughput in coordinates scanned per
    /// cycle (one two-finger step per PE per cycle).
    pub isect_coords_per_cycle: f64,
    /// MACs per PE per cycle.
    pub macs_per_pe_per_cycle: f64,
    /// Fraction of each operand buffer dedicated to the `A` operand; the
    /// same fraction goes to `B` and the remainder holds outputs and
    /// coordinate scratch.
    pub operand_fraction: f64,
    /// DRAM round-trip latency in cycles (sizes the Tailors FIFO region at
    /// the global buffer, §3.3.1).
    pub dram_latency_cycles: u64,
    /// GB round-trip latency in cycles (sizes the PE-level FIFO regions).
    pub gb_latency_cycles: u64,
}

impl ArchConfig {
    /// The paper's normalized ExTensor configuration (§5.2).
    pub fn extensor() -> Self {
        ArchConfig {
            gb_bytes: 30 * 1024 * 1024,
            pe_buf_bytes: 64 * 1024,
            pe_count: 128,
            bytes_per_element: 12, // 8 B value + 4 B compressed coordinate
            dram_bytes_per_cycle: 68.25,
            gb_elems_per_cycle: 256.0,
            isect_coords_per_cycle: 2.0 * 128.0,
            macs_per_pe_per_cycle: 1.0,
            operand_fraction: 0.4,
            dram_latency_cycles: 100,
            gb_latency_cycles: 10,
        }
    }

    /// Scales the storage capacities by `factor`, keeping bandwidths and
    /// PE count. Pairing this with [`tailors_workloads::Workload::scaled`]
    /// (same factor) preserves the tensor-to-buffer size ratios — and hence
    /// the evaluation's shape — in quick runs.
    ///
    /// [`tailors_workloads::Workload::scaled`]:
    /// https://docs.rs/tailors-workloads
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let mut a = *self;
        a.gb_bytes = ((self.gb_bytes as f64 * factor) as u64).max(64 * self.bytes_per_element);
        a.pe_buf_bytes =
            ((self.pe_buf_bytes as f64 * factor) as u64).max(16 * self.bytes_per_element);
        a
    }

    /// A small configuration for unit tests and the functional engine
    /// (single PE, kilobyte-scale buffers).
    pub fn tiny(gb_elems: u64, pe_elems: u64) -> Self {
        let mut a = Self::extensor();
        a.gb_bytes = gb_elems * a.bytes_per_element;
        a.pe_buf_bytes = pe_elems * a.bytes_per_element;
        a.pe_count = 1;
        a
    }

    /// Global-buffer capacity in element slots.
    pub fn gb_capacity_elems(&self) -> u64 {
        self.gb_bytes / self.bytes_per_element
    }

    /// Per-PE buffer capacity in element slots.
    pub fn pe_capacity_elems(&self) -> u64 {
        self.pe_buf_bytes / self.bytes_per_element
    }

    /// Element slots of the global buffer allocated to one operand's tile.
    pub fn gb_operand_capacity(&self) -> u64 {
        ((self.gb_capacity_elems() as f64) * self.operand_fraction).floor() as u64
    }

    /// Element slots of one PE buffer allocated to one operand's subtile.
    pub fn pe_operand_capacity(&self) -> u64 {
        ((self.pe_capacity_elems() as f64) * self.operand_fraction).floor() as u64
    }

    /// Aggregate PE-level operand capacity across all PEs — the budget a
    /// global-buffer tile is subdivided against.
    pub fn pe_array_operand_capacity(&self) -> u64 {
        self.pe_operand_capacity() * self.pe_count
    }

    /// Effective capacity that bounds one operand's working tile: the
    /// global-buffer partition or the double-buffered PE-array aggregate,
    /// whichever is smaller. A tile larger than the PE array's staging
    /// capacity cannot be live in the PEs even if the GB can hold it, so
    /// this is what the prescient and overbooked planners size against —
    /// and it is why real tilings have thousands of tiles (Fig. 1), not a
    /// handful.
    pub fn tile_capacity(&self) -> u64 {
        self.gb_operand_capacity()
            .min(2 * self.pe_array_operand_capacity())
            .max(1)
    }

    /// DRAM bandwidth in elements per cycle.
    pub fn dram_elems_per_cycle(&self) -> f64 {
        self.dram_bytes_per_cycle / self.bytes_per_element as f64
    }

    /// Tailors FIFO-region size (elements) at the global buffer: sized to
    /// hide the DRAM round trip with double buffering (§3.3.1), clamped to
    /// half the working-tile capacity.
    pub fn gb_fifo_region(&self) -> u64 {
        let need =
            (2.0 * self.dram_latency_cycles as f64 * self.dram_elems_per_cycle()).ceil() as u64;
        need.max(1).min(self.tile_capacity() / 2).max(1)
    }

    /// Tailors FIFO-region size (elements) at a PE buffer.
    pub fn pe_fifo_region(&self) -> u64 {
        let per_pe_fill = self.gb_elems_per_cycle / self.pe_count as f64;
        let need = (2.0 * self.gb_latency_cycles as f64 * per_pe_fill).ceil() as u64;
        need.max(1).min(self.pe_operand_capacity() / 2).max(1)
    }

    /// A hashable identity for this configuration, for keying caches of
    /// derived artifacts (tile plans, execution plans, run metrics).
    ///
    /// Two configurations produce equal keys iff every field is equal
    /// (floating-point fields compare by bit pattern, so `NaN`s are equal
    /// to themselves and `-0.0 != 0.0` — the conservative choice for a
    /// cache key). `ArchConfig` itself cannot implement `Eq`/`Hash`
    /// because of those `f64` fields; the serving layer keys its plan tier
    /// by this instead.
    pub fn cache_key(&self) -> ArchKey {
        // Exhaustive destructuring (no `..`): adding a field to
        // `ArchConfig` fails to compile here until the key learns about
        // it — a silently incomplete key would let caches serve one
        // architecture's plans for another.
        let ArchConfig {
            gb_bytes,
            pe_buf_bytes,
            pe_count,
            bytes_per_element,
            dram_bytes_per_cycle,
            gb_elems_per_cycle,
            isect_coords_per_cycle,
            macs_per_pe_per_cycle,
            operand_fraction,
            dram_latency_cycles,
            gb_latency_cycles,
        } = *self;
        ArchKey {
            gb_bytes,
            pe_buf_bytes,
            pe_count,
            bytes_per_element,
            dram_bytes_per_cycle: dram_bytes_per_cycle.to_bits(),
            gb_elems_per_cycle: gb_elems_per_cycle.to_bits(),
            isect_coords_per_cycle: isect_coords_per_cycle.to_bits(),
            macs_per_pe_per_cycle: macs_per_pe_per_cycle.to_bits(),
            operand_fraction: operand_fraction.to_bits(),
            dram_latency_cycles,
            gb_latency_cycles,
        }
    }
}

/// The cacheable identity of an [`ArchConfig`] (see
/// [`ArchConfig::cache_key`]): every field, with `f64`s captured by bit
/// pattern so the key is `Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchKey {
    gb_bytes: u64,
    pe_buf_bytes: u64,
    pe_count: u64,
    bytes_per_element: u64,
    dram_bytes_per_cycle: u64,
    gb_elems_per_cycle: u64,
    isect_coords_per_cycle: u64,
    macs_per_pe_per_cycle: u64,
    operand_fraction: u64,
    dram_latency_cycles: u64,
    gb_latency_cycles: u64,
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::extensor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensor_capacities_are_sane() {
        let a = ArchConfig::extensor();
        // 30 MB / 12 B ≈ 2.62 M slots.
        assert_eq!(a.gb_capacity_elems(), 30 * 1024 * 1024 / 12);
        assert!(a.gb_operand_capacity() < a.gb_capacity_elems());
        assert!(a.pe_operand_capacity() < a.pe_capacity_elems());
        assert!(a.pe_array_operand_capacity() > a.pe_operand_capacity());
        assert!(a.dram_elems_per_cycle() > 1.0);
    }

    #[test]
    fn fifo_regions_are_positive_and_bounded() {
        let a = ArchConfig::extensor();
        assert!(a.gb_fifo_region() >= 1);
        assert!(a.gb_fifo_region() <= a.gb_operand_capacity() / 2);
        assert!(a.pe_fifo_region() >= 1);
        assert!(a.pe_fifo_region() <= a.pe_operand_capacity() / 2);
    }

    #[test]
    fn cache_key_tracks_field_identity() {
        let a = ArchConfig::extensor();
        assert_eq!(a.cache_key(), ArchConfig::extensor().cache_key());
        assert_ne!(a.cache_key(), a.scaled(0.5).cache_key());
        let mut b = a;
        b.dram_bytes_per_cycle += 1.0;
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), ArchConfig::tiny(1000, 100).cache_key());
    }

    #[test]
    fn tiny_config_scales_down() {
        let a = ArchConfig::tiny(1000, 100);
        assert_eq!(a.gb_capacity_elems(), 1000);
        assert_eq!(a.pe_capacity_elems(), 100);
        assert_eq!(a.pe_count, 1);
    }
}
