//! Criterion benchmarks for the tiling layer: the wall-clock cost of each
//! tiling strategy's tile-size search — the tiling tax made concrete.
//! Swiftiles' sampling should be orders of magnitude cheaper than the
//! prescient full-traversal search (Table 1's efficiency axis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tailors_core::swiftiles::SwiftilesConfig;
use tailors_core::TilingStrategy;
use tailors_tensor::gen::GenSpec;
use tailors_tensor::tiling::RowPanels;

fn bench_strategies(c: &mut Criterion) {
    let profile = GenSpec::power_law(100_000, 100_000, 1_000_000)
        .seed(7)
        .generate()
        .profile();
    let capacity = 32_768;

    let mut g = c.benchmark_group("tile_size_search");
    g.sample_size(20);
    g.bench_function("uniform_shape", |b| {
        b.iter(|| black_box(TilingStrategy::UniformShape.choose(&profile, capacity)))
    });
    g.bench_function("prescient", |b| {
        b.iter(|| black_box(TilingStrategy::PrescientUniformShape.choose(&profile, capacity)))
    });
    g.bench_function("swiftiles_k10", |b| {
        let config = SwiftilesConfig::new(0.10, 10).unwrap();
        b.iter(|| black_box(TilingStrategy::Overbooked(config).choose(&profile, capacity)))
    });
    g.bench_function("swiftiles_sample_all", |b| {
        let config = SwiftilesConfig::new(0.10, 10).unwrap().sample_all();
        b.iter(|| black_box(TilingStrategy::Overbooked(config).choose(&profile, capacity)))
    });
    g.finish();

    let mut g = c.benchmark_group("occupancy_scan");
    g.bench_function("full_panel_scan_100k_rows", |b| {
        b.iter(|| {
            let panels = RowPanels::new(&profile, 512);
            black_box(panels.occupancies().sum::<u64>())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
