//! A bounded, two-lane priority mailbox — the admission-controlled queue
//! in front of every [`ServiceRuntime`](crate::runtime::ServiceRuntime)
//! worker.
//!
//! The shape follows the bounded-buffer idiom (a capacity-limited
//! `VecDeque` behind a mutex, `try_push` handing the value back on
//! overflow) with two serving-specific changes:
//!
//! * **Two priority lanes.** Analytical requests (microseconds when
//!   plan-hot) ride the high lane; functional requests (tensor-resident,
//!   milliseconds to seconds) ride the low lane. `pop` always serves the
//!   high lane first, so a burst of heavy functional work cannot starve
//!   the cheap interactive traffic behind it. Capacity bounds the *sum*
//!   of both lanes — total queued memory is what backpressure protects.
//! * **Rejection, never silent drop.** A full mailbox returns
//!   [`PushError::Full`] with the value handed back (the caller turns it
//!   into a typed `Overloaded` reply and may retry with backoff); there
//!   is no `force_push` — overwriting queued requests would violate the
//!   runtime's accounting invariant (completed + rejected + timed-out =
//!   submitted).
//!
//! Locks recover from poisoning (see [`crate::sync`]): a worker that
//! panics mid-request must not wedge the queue for every later request.

use std::collections::VecDeque;

use crate::sync::{PoisonFreeCondvar, PoisonFreeMutex};

/// Which lane a message rides; [`Mailbox::pop`] drains [`Priority::High`]
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Served before any queued low-priority message (analytical
    /// requests).
    High,
    /// Served when the high lane is empty (functional requests).
    Low,
}

/// Why a push was refused; the rejected value is handed back so nothing
/// is ever silently dropped.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The mailbox is at capacity — backpressure; retry later or reject
    /// upward as `Overloaded`.
    Full(T),
    /// The mailbox was closed for shutdown; no further work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The value that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

/// Monotone counters describing a mailbox's traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailboxStats {
    /// Messages accepted by `try_push`.
    pub pushed: u64,
    /// Pushes refused because the mailbox was at capacity.
    pub rejected_full: u64,
    /// Pushes refused because the mailbox was closed.
    pub rejected_closed: u64,
    /// Messages handed to consumers.
    pub popped: u64,
}

#[derive(Debug)]
struct State<T> {
    high: VecDeque<T>,
    low: VecDeque<T>,
    closed: bool,
    stats: MailboxStats,
}

impl<T> State<T> {
    fn len(&self) -> usize {
        self.high.len() + self.low.len()
    }

    fn pop_front(&mut self) -> Option<T> {
        let v = self.high.pop_front().or_else(|| self.low.pop_front());
        if v.is_some() {
            self.stats.popped += 1;
        }
        v
    }
}

/// A bounded two-lane priority queue; see the [module docs](self).
#[derive(Debug)]
pub struct Mailbox<T> {
    capacity: usize,
    state: PoisonFreeMutex<State<T>>,
    /// Signalled on push and close; consumers block on it in `pop`.
    available: PoisonFreeCondvar,
}

impl<T> Mailbox<T> {
    /// An open mailbox admitting at most `capacity` queued messages
    /// across both lanes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-capacity mailbox would reject
    /// every message, which is a configuration error, not load.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            capacity,
            state: PoisonFreeMutex::new(State {
                high: VecDeque::new(),
                low: VecDeque::new(),
                closed: false,
                stats: MailboxStats::default(),
            }),
            available: PoisonFreeCondvar::new(),
        }
    }

    /// The capacity bound across both lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Messages currently queued (both lanes).
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// Whether the mailbox is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> MailboxStats {
        self.state.lock().stats
    }

    /// Attempts to enqueue `value` on `priority`'s lane. Refuses — handing
    /// the value back — when the mailbox is at capacity
    /// ([`PushError::Full`], the backpressure signal) or closed
    /// ([`PushError::Closed`]).
    ///
    /// # Errors
    ///
    /// [`PushError`] with the rejected value; nothing is ever dropped.
    pub fn try_push(&self, priority: Priority, value: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock();
        if s.closed {
            s.stats.rejected_closed += 1;
            return Err(PushError::Closed(value));
        }
        if s.len() >= self.capacity {
            s.stats.rejected_full += 1;
            return Err(PushError::Full(value));
        }
        match priority {
            Priority::High => s.high.push_back(value),
            Priority::Low => s.low.push_back(value),
        }
        s.stats.pushed += 1;
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues the next message, preferring the high lane; blocks while
    /// the mailbox is empty and open. Returns `None` only when the
    /// mailbox is closed **and** drained — the worker-loop termination
    /// condition, guaranteeing a graceful shutdown serves everything that
    /// was admitted.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(v) = s.pop_front() {
                return Some(v);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s);
        }
    }

    /// Dequeues the next message if one is queued; never blocks.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().pop_front()
    }

    /// Closes the mailbox: further pushes are refused, queued messages
    /// remain poppable, and blocked consumers wake (draining the queue,
    /// then observing `None`).
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.available.notify_all();
    }

    /// Closes the mailbox and takes every queued message in one step —
    /// the *aborting* shutdown path, where the caller must reply
    /// `Shutdown` to each unserved request rather than lose it.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut s = self.state.lock();
        s.closed = true;
        let mut out = Vec::with_capacity(s.len());
        while let Some(v) = s.pop_front() {
            out.push(v);
        }
        drop(s);
        self.available.notify_all();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn high_lane_drains_first_within_capacity() {
        let mb = Mailbox::bounded(4);
        mb.try_push(Priority::Low, 1).unwrap();
        mb.try_push(Priority::Low, 2).unwrap();
        mb.try_push(Priority::High, 10).unwrap();
        mb.try_push(Priority::High, 11).unwrap();
        assert_eq!(mb.len(), 4);
        assert_eq!(mb.try_pop(), Some(10));
        assert_eq!(mb.try_pop(), Some(11));
        assert_eq!(mb.try_pop(), Some(1));
        assert_eq!(mb.try_pop(), Some(2));
        assert_eq!(mb.try_pop(), None);
    }

    #[test]
    fn full_mailbox_hands_the_value_back() {
        let mb = Mailbox::bounded(2);
        mb.try_push(Priority::Low, 1).unwrap();
        mb.try_push(Priority::High, 2).unwrap();
        // Capacity bounds the sum of both lanes.
        assert_eq!(mb.try_push(Priority::High, 3), Err(PushError::Full(3)));
        let s = mb.stats();
        assert_eq!((s.pushed, s.rejected_full), (2, 1));
        // Draining one slot readmits.
        assert_eq!(mb.try_pop(), Some(2));
        mb.try_push(Priority::High, 3).unwrap();
    }

    #[test]
    fn close_refuses_pushes_but_serves_queued() {
        let mb = Mailbox::bounded(4);
        mb.try_push(Priority::Low, 1).unwrap();
        mb.close();
        assert_eq!(mb.try_push(Priority::Low, 2), Err(PushError::Closed(2)));
        assert_eq!(mb.pop(), Some(1));
        assert_eq!(mb.pop(), None);
        assert_eq!(mb.stats().rejected_closed, 1);
    }

    #[test]
    fn close_and_drain_returns_unserved() {
        let mb = Mailbox::bounded(4);
        mb.try_push(Priority::Low, 1).unwrap();
        mb.try_push(Priority::High, 2).unwrap();
        assert_eq!(mb.close_and_drain(), vec![2, 1]);
        assert_eq!(mb.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        let mb = Arc::new(Mailbox::bounded(2));
        let consumer = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = mb.pop() {
                    got.push(v);
                }
                got
            })
        };
        mb.try_push(Priority::Low, 7).unwrap();
        mb.try_push(Priority::Low, 8).unwrap();
        // Give the consumer a moment, then close to terminate its loop.
        while !mb.is_empty() {
            std::thread::yield_now();
        }
        mb.close();
        assert_eq!(consumer.join().expect("consumer"), vec![7, 8]);
    }
}
