//! Criterion micro-benchmarks for the EDDO storage idioms: raw operation
//! throughput and the Fig. 3 traversal scenarios (Tailor vs Buffet on
//! fitting and overbooked tiles).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use tailors_eddo::replay::{replay_buffet, replay_tailor};
use tailors_eddo::{Buffet, Tailor, TailorConfig};

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("eddo_ops");
    g.throughput(Throughput::Elements(1024));

    g.bench_function("buffet_fill_read_shrink", |b| {
        b.iter(|| {
            let mut buf: Buffet<u64> = Buffet::new(1024);
            for i in 0..1024u64 {
                buf.fill(i).unwrap();
            }
            let mut acc = 0u64;
            for i in 0..1024usize {
                acc = acc.wrapping_add(buf.read(i).unwrap());
            }
            buf.shrink(1024).unwrap();
            black_box(acc)
        })
    });

    g.bench_function("tailor_fill_read_reset", |b| {
        b.iter(|| {
            let mut t: Tailor<u64> = Tailor::new(TailorConfig::new(1024, 64).unwrap());
            t.set_tile_len(1024);
            for i in 0..1024u64 {
                t.fill(i).unwrap();
            }
            let mut acc = 0u64;
            for i in 0..1024usize {
                acc = acc.wrapping_add(t.read(i).unwrap());
            }
            t.reset_tile();
            black_box(acc)
        })
    });

    g.bench_function("tailor_ow_fill_stream", |b| {
        b.iter(|| {
            let mut t: Tailor<u64> = Tailor::new(TailorConfig::new(1024, 64).unwrap());
            t.set_tile_len(4096);
            for i in 0..1024u64 {
                t.fill(i).unwrap();
            }
            for i in 1024..4096u64 {
                t.ow_fill(i).unwrap();
            }
            black_box(t.occupancy())
        })
    });
    g.finish();
}

fn bench_fig3_traversals(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_traversal");
    let tile: Vec<u64> = (0..4096).collect();
    let passes = 8;
    for (label, cap) in [("fitting", 8192usize), ("overbooked", 2048usize)] {
        g.bench_with_input(BenchmarkId::new("tailor", label), &cap, |b, &cap| {
            let config = TailorConfig::new(cap, cap / 8).unwrap();
            b.iter(|| black_box(replay_tailor(&tile, config, passes).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("buffet", label), &cap, |b, &cap| {
            b.iter(|| black_box(replay_buffet(&tile, cap, passes).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ops, bench_fig3_traversals);
criterion_main!(benches);
