//! Distribution statistics used throughout the paper's evaluation:
//! quantiles, histograms, geometric means, and error metrics.

/// Summary statistics of a tile-occupancy distribution (Fig. 1's callouts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySummary {
    /// Number of tiles.
    pub count: usize,
    /// Maximum occupancy.
    pub max: u64,
    /// Mean occupancy.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: u64,
    /// 90th-percentile occupancy (90 % of tiles are at or below this).
    pub p90: u64,
    /// 99th-percentile occupancy.
    pub p99: u64,
}

/// Computes an [`OccupancySummary`] over tile occupancies.
///
/// Returns `None` for an empty slice.
///
/// # Example
///
/// ```
/// use tailors_tensor::stats::summarize;
///
/// let s = summarize(&[1, 2, 3, 4, 100]).unwrap();
/// assert_eq!(s.max, 100);
/// assert_eq!(s.median, 3);
/// ```
pub fn summarize(occupancies: &[u64]) -> Option<OccupancySummary> {
    if occupancies.is_empty() {
        return None;
    }
    let mut sorted = occupancies.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
    Some(OccupancySummary {
        count,
        max: *sorted.last().expect("non-empty"),
        mean: sum as f64 / count as f64,
        median: quantile_sorted(&sorted, 0.5),
        p90: quantile_sorted(&sorted, 0.9),
        p99: quantile_sorted(&sorted, 0.99),
    })
}

/// The `q`-quantile (`0.0 ..= 1.0`) of a **sorted** slice, using the
/// nearest-rank method: the smallest value such that at least `q` of the
/// data is at or below it.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "slice must be sorted"
    );
    if q == 0.0 {
        return sorted[0];
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The `q`-quantile of an unsorted slice (sorts a copy).
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    quantile_sorted(&sorted, q)
}

/// The occupancy value that exactly `y` (a fraction) of tiles *exceed*:
/// the paper's `Q_y` (§4.2.3), i.e. the `(1 - y)` quantile.
///
/// # Panics
///
/// Panics if the slice is empty or `y` is outside `[0, 1]`.
pub fn overbooking_quantile(values: &[u64], y: f64) -> u64 {
    assert!((0.0..=1.0).contains(&y), "y must be in [0, 1]");
    quantile(values, 1.0 - y)
}

/// A fixed-width histogram over `u64` samples (Fig. 1 / Fig. 13a).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `n_bins` equal-width bins spanning
    /// `[0, max(samples)]`. The final bin is inclusive of the maximum.
    ///
    /// # Panics
    ///
    /// Panics if `n_bins == 0`.
    pub fn new(samples: &[u64], n_bins: usize) -> Self {
        assert!(n_bins > 0, "histogram needs at least one bin");
        let max = samples.iter().copied().max().unwrap_or(0);
        let bin_width = (max / n_bins as u64 + 1).max(1);
        let mut counts = vec![0u64; n_bins];
        for &s in samples {
            let bin = ((s / bin_width) as usize).min(n_bins - 1);
            counts[bin] += 1;
        }
        Histogram {
            bin_width,
            counts,
            total: samples.len() as u64,
        }
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin fraction of all samples (a PDF; sums to 1 when non-empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Cumulative per-bin fraction (a CDF; final entry is 1 when non-empty).
    pub fn cumulative_fractions(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.fractions()
            .into_iter()
            .map(|f| {
                acc += f;
                acc
            })
            .collect()
    }

    /// Iterates over `(bin_start, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bin_width, c))
    }
}

/// Geometric mean of strictly positive values — the paper's summary metric
/// for per-workload speedups (Figs. 7, 8, 10).
///
/// Returns `None` if the slice is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Mean absolute error between paired observations, in the same units as the
/// inputs. Used for Swiftiles' overbooking-rate accuracy (Figs. 11-12).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_absolute_error(observed: &[f64], target: &[f64]) -> f64 {
    assert_eq!(observed.len(), target.len(), "paired slices must match");
    assert!(!observed.is_empty(), "MAE of empty slices");
    observed
        .iter()
        .zip(target)
        .map(|(o, t)| (o - t).abs())
        .sum::<f64>()
        / observed.len() as f64
}

/// Mean absolute error against a scalar target.
///
/// # Panics
///
/// Panics if `observed` is empty.
pub fn mae_to_target(observed: &[f64], target: f64) -> f64 {
    assert!(!observed.is_empty(), "MAE of empty slice");
    observed.iter().map(|o| (o - target).abs()).sum::<f64>() / observed.len() as f64
}

/// Pearson correlation coefficient of paired samples (Fig. 9b's
/// reuse-vs-bumped correlation).
///
/// Returns `None` when fewer than two points or either variance is zero.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basic() {
        let s = summarize(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 1000]).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 1000);
        assert_eq!(s.median, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 1000);
        assert!((s.mean - 145.0).abs() < 1e-9);
        assert_eq!(summarize(&[]), None);
    }

    #[test]
    fn quantile_nearest_rank() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 0.1), 1);
        assert_eq!(quantile(&v, 0.5), 5);
        assert_eq!(quantile(&v, 0.9), 9);
        assert_eq!(quantile(&v, 1.0), 10);
    }

    #[test]
    fn overbooking_quantile_is_upper_tail() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        // 10% of tiles exceed the 90th percentile value 9.
        assert_eq!(overbooking_quantile(&v, 0.1), 9);
        assert_eq!(overbooking_quantile(&v, 0.0), 10);
        assert_eq!(overbooking_quantile(&v, 1.0), 1);
    }

    #[test]
    fn histogram_covers_all_samples() {
        let samples = [0, 1, 5, 9, 10, 10];
        let h = Histogram::new(&samples, 4);
        assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let cdf = h.cumulative_fractions();
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty_and_single_bin() {
        let h = Histogram::new(&[], 3);
        assert_eq!(h.counts(), &[0, 0, 0]);
        assert_eq!(h.fractions(), vec![0.0; 3]);
        let h1 = Histogram::new(&[7, 7, 7], 1);
        assert_eq!(h1.counts(), &[3]);
    }

    #[test]
    fn geomean_of_speedups() {
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
        assert_eq!(geomean(&[1.0, -2.0]), None);
    }

    #[test]
    fn mae_metrics() {
        assert!((mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
        assert!((mae_to_target(&[8.0, 12.0], 10.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_degenerate() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let inv = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &inv).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }
}
