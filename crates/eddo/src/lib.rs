//! EDDO storage idioms for the Tailors (MICRO 2023) reproduction.
//!
//! *Explicit decoupled data orchestration* (EDDO) buffers data movement
//! under workload control: fills are pushed by a parent memory level,
//! reads/updates serve a child, and shrinks retire data the workload is
//! done with. This crate implements the three storage idioms the paper
//! discusses:
//!
//! * [`Fifo`] — the classic queue idiom: first-in first-out, no random
//!   access, cheap and composable but unusable for tensor-algebra reuse.
//! * [`Buffet`] — Pellauer et al.'s buffet idiom: a queue that supports
//!   random **Read(Index)**/**Update(Index, Data)** relative to the head,
//!   **Fill(Data)** at the tail, and **Shrink(Num)** from the head, with
//!   credit-based synchronization.
//! * [`Tailor`] — the paper's contribution: a buffet extended with the
//!   **overwriting fill** (`OWFill`). When a tile *overbooks* the buffer
//!   (occupancy > capacity), the Tailor splits itself into a buffet-managed
//!   resident region (head side, keeps full reuse) and a FIFO-managed
//!   streaming region of configurable size at the tail through which the
//!   bumped remainder of the tile cycles. Index translation via the *FIFO
//!   offset* preserves buffet read semantics (§3.3.2, Fig. 5).
//!
//! [`replay`] builds on these to replay whole-tile traversals and count
//! parent refetch traffic — the Fig. 3 comparison and the per-tile reuse
//! accounting used by the accelerator model in `tailors-sim`.
//!
//! # Example
//!
//! ```
//! use tailors_eddo::{Tailor, TailorConfig};
//!
//! // A buffer of 4 slots with a 2-slot streaming region (Fig. 5 setup).
//! let mut t: Tailor<char> = Tailor::new(TailorConfig::new(4, 2)?);
//! t.set_tile_len(6);
//! for ch in ['a', 'b', 'c', 'd'] {
//!     t.fill(ch)?;
//! }
//! t.ow_fill('e')?; // buffer is full: splits into resident [a, b] + FIFO
//! t.ow_fill('f')?;
//! assert_eq!(t.read(0)?, 'a'); // resident data keeps its reuse
//! assert_eq!(t.read(5)?, 'f'); // bumped data is served from the FIFO tail
//! # Ok::<(), tailors_eddo::EddoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffet;
mod error;
mod fifo;
mod stats;
mod tailor;

pub mod replay;

pub use buffet::Buffet;
pub use error::EddoError;
pub use fifo::Fifo;
pub use stats::AccessStats;
pub use tailor::{Tailor, TailorConfig};
