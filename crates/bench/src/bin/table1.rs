//! Table 1: tiling-strategy comparison — buffer utilization (adaptability)
//! and tiling tax (efficiency) for all four strategies, measured on a
//! representative subset of the suite.
//!
//! Usage: `cargo run --release -p tailors-bench --bin table1 [scale]`

use tailors_bench::{arch_at, fmt_count, profile_at, rule, scale_from_args};
use tailors_core::swiftiles::SwiftilesConfig;
use tailors_core::TilingStrategy;

fn main() {
    let scale = scale_from_args();
    let arch = arch_at(scale);
    let capacity = arch.tile_capacity();
    let strategies: [(&str, TilingStrategy); 4] = [
        ("Uniform shape", TilingStrategy::UniformShape),
        (
            "Prescient uniform shape",
            TilingStrategy::PrescientUniformShape,
        ),
        ("Uniform occupancy (PST)", TilingStrategy::UniformOccupancy),
        (
            "Overbooking (this work)",
            TilingStrategy::Overbooked(SwiftilesConfig::new(0.10, 10).expect("valid y")),
        ),
    ];
    let representative = ["rma10", "amazon0312", "webbase-1M", "roadNet-CA"];

    println!("Table 1 — tiling strategies (scale = {scale}, capacity = {capacity} nnz)");
    for name in representative {
        let wl = tailors_workloads::by_name(name).expect("suite tensor");
        let (_, profile) = profile_at(&wl, scale);
        println!();
        println!("{name}:");
        rule(84);
        println!(
            "{:<26} {:>12} {:>10} {:>16} {:>14}",
            "strategy", "utilization", "overbook%", "preproc tax", "matching tax"
        );
        rule(84);
        for (label, strategy) in &strategies {
            let choice = strategy.choose(&profile, capacity);
            println!(
                "{:<26} {:>11.1}% {:>9.1}% {:>16} {:>14}",
                label,
                100.0 * choice.mean_utilization,
                100.0 * choice.overbooking_rate,
                fmt_count(choice.tax.preprocessing_nnz as u128),
                fmt_count(choice.tax.matching_ops as u128),
            );
        }
        rule(84);
    }
    println!();
    println!("paper's qualitative Table 1: uniform = very low util / no tax;");
    println!("prescient = low util / high tax; PST = high util / very high tax;");
    println!("overbooking = high util / low tax.");
}
